package dcsim

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/perf"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// numClasses is the number of workload classes the replay loop
// aggregates over (LowMem/MidMem/HighMem).
const numClasses = 3

// runState holds everything one Run shares across its slots: the
// DVFS-level lookup tables and the reusable scratch buffers that make
// the steady-state slot loop allocation-free.
//
// The tables exploit that the online governor only ever requests
// frequencies ClampFrequency snaps onto the server's finite DVFS grid:
// observables (perf.Table), power coefficients (power.LevelEvaluator)
// and the capacity scale factor are precomputed once per level through
// the power.Model interface and indexed by Model.LevelIndex in the
// loop, bit-identical to calling perf.Observe / Model.Power at the
// clamped frequency (see the property tests in internal/power and
// internal/perf). Evaluators are boxed once at table-build time, so
// the steady-state loop stays allocation-free under any power model.
type runState struct {
	cfg  *Config
	spec alloc.ServerSpec

	evalStart int
	sampleSec float64
	first     int
	last      int

	// vms is the reusable demand-header slice: per slot only the
	// CPU/Mem window views change, never the backing array.
	vms []alloc.VMDemand

	// cpuWin and memWin hold the current slot's predicted windows,
	// one SamplesPerSlot row per VM, packed back to back so the
	// allocator's scans stay cache-resident.
	cpuWin, memWin []float64

	// resident is the reusable resident-set buffer for transition
	// accounting (nil when transitions are disabled).
	resident []float64

	// DVFS-level tables; grid == nil means the server has no finite
	// grid (DVFSStep <= 0) and the replay falls back to direct model
	// evaluation per sample.
	grid        []units.Frequency
	obs         *perf.Table
	levelPowers []power.LevelEvaluator
	scaleByLvl  []float64

	// fixedEval caches the evaluator for a fixed-cap policy's pinned
	// frequency (which need not lie on the grid): building it through
	// the interface boxes an allocation, so it is reused across slots
	// as long as the planned frequency does not change — keeping the
	// slot loop allocation-free for COAT-OPT-style policies too.
	fixedEval     power.LevelEvaluator
	fixedEvalFreq units.Frequency

	// Columnar replay scratch: per-sample aggregates of one server's
	// slot window, rebuilt per server from flat trace rows.
	classCPU [numClasses][trace.SamplesPerSlot]float64
	cpuTotal [trace.SamplesPerSlot]float64
	memTotal [trace.SamplesPerSlot]float64

	prevAsg *alloc.Assignment
	slots   []SlotResult
}

func newRunState(cfg *Config) (*runState, error) {
	if err := validate(cfg); err != nil {
		return nil, err
	}
	spec := alloc.ServerSpec{
		Cores:         cfg.Server.NumCores(),
		MemContainers: cfg.Server.MemGB(),
		FMax:          cfg.Server.FreqMax(),
		FMin:          cfg.Server.FreqMin(),
	}
	slots := cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	first, last := cfg.StartSlot, slots
	if cfg.NumSlots > 0 {
		last = first + cfg.NumSlots
	}
	st := &runState{
		cfg:       cfg,
		spec:      spec,
		evalStart: cfg.HistoryDays * trace.SamplesPerDay,
		sampleSec: cfg.Trace.Interval.Seconds(),
		first:     first,
		last:      last,
		vms:       make([]alloc.VMDemand, len(cfg.Trace.VMs)),
		cpuWin:    make([]float64, len(cfg.Trace.VMs)*trace.SamplesPerSlot),
		memWin:    make([]float64, len(cfg.Trace.VMs)*trace.SamplesPerSlot),
		slots:     make([]SlotResult, 0, last-first),
	}
	if cfg.Transitions != (TransitionModel{}) {
		st.resident = make([]float64, len(cfg.Trace.VMs))
	}
	if grid := cfg.Server.DVFSGrid(); grid != nil {
		st.grid = grid
		st.obs = perf.NewTable(cfg.Platform, grid, 1)
		st.levelPowers = make([]power.LevelEvaluator, len(grid))
		st.scaleByLvl = make([]float64, len(grid))
		for k, f := range grid {
			st.levelPowers[k] = cfg.Server.LevelAt(f)
			st.scaleByLvl[k] = spec.FMax.GHz() / f.GHz()
		}
	}
	return st, nil
}

// clone copies a runState for an independent continuation bound to
// cfg (the cloning stepper's own Config copy). Immutable per-run
// tables (DVFS grid, observables, level powers, capacity scales) and
// the previous assignment (read-only after its slot) are shared;
// per-step scratch is allocated fresh — it is rebuilt from scratch on
// every step — and the slot results are deep-copied so each side
// appends independently.
func (st *runState) clone(cfg *Config) *runState {
	c := *st
	c.cfg = cfg
	c.vms = make([]alloc.VMDemand, len(st.vms))
	c.cpuWin = make([]float64, len(st.cpuWin))
	c.memWin = make([]float64, len(st.memWin))
	if st.resident != nil {
		c.resident = make([]float64, len(st.resident))
	}
	c.slots = append(make([]SlotResult, 0, st.last-st.first), st.slots...)
	return &c
}

// step simulates one slot: build demand views, allocate, replay, and
// price transitions. It performs no heap allocations beyond what the
// allocation policy itself allocates (pinned by
// TestSlotLoopAllocationFree).
func (st *runState) step(s int) error {
	cfg := st.cfg
	lo := s * trace.SamplesPerSlot // offset within the eval period
	hi := lo + trace.SamplesPerSlot

	// 1) Predicted demands: reuse the header slice and copy each VM's
	// window into the run's compact per-slot buffer. The prediction
	// rows span the whole evaluation period, so slot windows sit
	// ~2 KB apart; packing them back to back keeps the allocator's
	// many scans over the same 150×12 samples cache-resident. Values
	// are copied verbatim — allocations are bit-identical.
	for v := range st.vms {
		cpuRow := st.cpuWin[v*trace.SamplesPerSlot : (v+1)*trace.SamplesPerSlot]
		memRow := st.memWin[v*trace.SamplesPerSlot : (v+1)*trace.SamplesPerSlot]
		copy(cpuRow, cfg.Predictions.CPU[v][lo:hi])
		copy(memRow, cfg.Predictions.Mem[v][lo:hi])
		st.vms[v].ID = v
		st.vms[v].CPU = cpuRow
		st.vms[v].Mem = memRow
	}

	// 2) Allocate.
	asg, err := cfg.Policy.Allocate(st.vms, st.spec)
	if err != nil {
		return fmt.Errorf("dcsim: slot %d: %w", s, err)
	}

	// 3) Replay the actual traces against the assignment.
	slot := st.replaySlot(asg, st.evalStart+lo)
	slot.Slot = s
	slot.PlannedFreq = asg.PlannedFreq

	// 4) Transition accounting (zero under the paper model).
	if cfg.Transitions != (TransitionModel{}) {
		if err := residentSets(cfg.Trace, st.evalStart+lo, st.resident); err != nil {
			return fmt.Errorf("dcsim: slot %d: %w", s, err)
		}
		te, stats := cfg.Transitions.slotTransitionEnergy(st.prevAsg, asg, st.resident, cfg.InitialActiveServers)
		slot.TransitionEnergy = te
		slot.Migrations = stats.Migrations
		slot.Energy += te
	}
	st.prevAsg = asg
	st.slots = append(st.slots, slot)
	return nil
}

// replaySlot plays the actual traces of one slot against an
// assignment: per server and sample it runs the shared online DVFS
// governor, integrates power, and counts overutilisation. The demand
// aggregation is columnar — per server it walks each member VM's flat
// trace row once, accumulating per-sample totals in the run-scoped
// scratch — which visits each per-sample accumulator in the same VM
// order as the original per-sample pointer walk, so every float result
// is bit-identical.
func (st *runState) replaySlot(asg *alloc.Assignment, absLo int) SlotResult {
	var out SlotResult
	cfg := st.cfg
	spec := st.spec
	// Deliverable CPU capacity: demand beyond it is a violation. A
	// dynamic-DVFS policy can boost to F_max, so the whole capacity is
	// deliverable; a fixed-cap policy (COAT-OPT) is pinned at its
	// planned frequency and can deliver only the corresponding share —
	// the paper's "less control on violations ... using a fixed cap".
	capCPU := spec.CPUPoints()
	if asg.FixedFreq {
		capCPU = spec.CPUPoints() * asg.PlannedFreq.GHz() / spec.FMax.GHz()
	}
	capMem := spec.MemPoints()

	// Fixed-cap policies run every sample pinned at PlannedFreq, which
	// need not lie on the DVFS grid: evaluate its observables and
	// power coefficients once for the whole slot instead.
	var fixedObs [numClasses]perf.Observables
	var fixedLP power.LevelEvaluator
	var fixedScale float64
	if asg.FixedFreq {
		for c := 0; c < numClasses; c++ {
			fixedObs[c] = perf.Observe(cfg.Platform, workload.Class(c), asg.PlannedFreq, 1)
		}
		if st.fixedEval == nil || st.fixedEvalFreq != asg.PlannedFreq {
			st.fixedEval = cfg.Server.LevelAt(asg.PlannedFreq)
			st.fixedEvalFreq = asg.PlannedFreq
		}
		fixedLP = st.fixedEval
		fixedScale = spec.FMax.GHz() / asg.PlannedFreq.GHz()
	}

	active := 0
	for _, srv := range asg.Servers {
		if len(srv.VMs) == 0 {
			continue
		}
		active++

		// Columnar aggregation of the server's actual demand.
		for i := range st.cpuTotal {
			st.cpuTotal[i] = 0
			st.memTotal[i] = 0
		}
		for c := range st.classCPU {
			for i := range st.classCPU[c] {
				st.classCPU[c][i] = 0
			}
		}
		for _, v := range srv.VMs {
			vm := cfg.Trace.VMs[v]
			cpuRow := vm.CPU[absLo : absLo+trace.SamplesPerSlot]
			memRow := vm.Mem[absLo : absLo+trace.SamplesPerSlot]
			cls := &st.classCPU[vm.Class]
			for i, c := range cpuRow {
				cls[i] += c
				st.cpuTotal[i] += c
				st.memTotal[i] += memRow[i]
			}
		}

		for i := 0; i < trace.SamplesPerSlot; i++ {
			cpuTotal := st.cpuTotal[i]
			memTotal := st.memTotal[i]

			// Overutilisation accounting (Fig. 4): demand beyond the
			// server's deliverable capacity even at F_max, or beyond
			// physical memory.
			if cpuTotal > capCPU+1e-9 || memTotal > capMem+1e-9 {
				out.Violations++
			}

			// Online DVFS governor: the lowest level that delivers the
			// demand (clipped at F_max when overloaded). Fixed-cap
			// policies run pinned at their planned frequency instead.
			var scale float64
			lvl := -1
			if asg.FixedFreq {
				scale = fixedScale
			} else if st.grid != nil {
				needGHz := cpuTotal / spec.CPUPoints() * spec.FMax.GHz()
				lvl = cfg.Server.LevelIndex(units.GHz(needGHz), len(st.grid))
				scale = st.scaleByLvl[lvl]
			}

			if lvl >= 0 || asg.FixedFreq {
				// Busy core-equivalents at the chosen frequency.
				busy := cpuTotal / 100 * scale
				if busy > float64(spec.Cores) {
					busy = float64(spec.Cores)
				}

				// Per-class observables scale with the class's busy cores.
				var wfm, llcR, llcW, memR, memW float64
				for c := 0; c < numClasses; c++ {
					classCPU := st.classCPU[c][i]
					if classCPU == 0 {
						continue
					}
					classBusy := classCPU / 100 * scale
					var obs perf.Observables
					if asg.FixedFreq {
						obs = fixedObs[c]
					} else {
						obs = st.obs.At(workload.Class(c), lvl)
					}
					wfm += classBusy * obs.WFMFraction
					llcR += classBusy * obs.LLCReadsPerSec
					llcW += classBusy * obs.LLCWritesPerSec
					memR += classBusy * obs.MemReadBytesPerSec
					memW += classBusy * obs.MemWriteBytesPerSec
				}
				if busy > 0 {
					wfm /= busy
				}
				var p units.Power
				if asg.FixedFreq {
					p = fixedLP.Evaluate(busy, wfm, llcR, llcW, memR, memW)
				} else {
					p = st.levelPowers[lvl].Evaluate(busy, wfm, llcR, llcW, memR, memW)
				}
				out.Energy += units.EnergyOver(p, st.sampleSec)
				continue
			}

			// No finite DVFS grid (DVFSStep <= 0): evaluate the models
			// directly, as the pre-table implementation did.
			needGHz := cpuTotal / spec.CPUPoints() * spec.FMax.GHz()
			f := cfg.Server.ClampFrequency(units.GHz(needGHz))
			scale = spec.FMax.GHz() / f.GHz()
			busy := cpuTotal / 100 * scale
			if busy > float64(spec.Cores) {
				busy = float64(spec.Cores)
			}
			var wfm, llcR, llcW, memR, memW float64
			for c := 0; c < numClasses; c++ {
				classCPU := st.classCPU[c][i]
				if classCPU == 0 {
					continue
				}
				classBusy := classCPU / 100 * scale
				obs := perf.Observe(cfg.Platform, workload.Class(c), f, 1)
				wfm += classBusy * obs.WFMFraction
				llcR += classBusy * obs.LLCReadsPerSec
				llcW += classBusy * obs.LLCWritesPerSec
				memR += classBusy * obs.MemReadBytesPerSec
				memW += classBusy * obs.MemWriteBytesPerSec
			}
			if busy > 0 {
				wfm /= busy
			}
			op := power.OperatingPoint{
				Freq:                f,
				BusyCores:           busy,
				WFMFraction:         wfm,
				LLCReadsPerSec:      llcR,
				LLCWritesPerSec:     llcW,
				MemReadBytesPerSec:  memR,
				MemWriteBytesPerSec: memW,
			}
			out.Energy += units.EnergyOver(cfg.Server.Power(op), st.sampleSec)
		}
	}
	out.ActiveServers = active

	// Pool-cap accounting: servers beyond the physical pool count as
	// violations for every sample of the slot.
	if cfg.MaxServers > 0 && active > cfg.MaxServers {
		out.Violations += (active - cfg.MaxServers) * trace.SamplesPerSlot
	}
	return out
}

// finish aggregates the per-slot results.
func (st *runState) finish() *Result {
	label := st.cfg.TraceLabel
	if label == "" {
		label = "synthetic"
	}
	res := &Result{
		Policy:    st.cfg.Policy.Name(),
		Predictor: st.cfg.Predictions.Predictor,
		Trace:     label,
		Slots:     st.slots,
	}
	var activeSum int
	for _, s := range res.Slots {
		res.TotalEnergy += s.Energy
		res.TotalViol += s.Violations
		res.TotalMigrations += s.Migrations
		res.TotalTransitionEnergy += s.TransitionEnergy
		activeSum += s.ActiveServers
		if s.ActiveServers > res.PeakActive {
			res.PeakActive = s.ActiveServers
		}
	}
	if len(res.Slots) > 0 {
		res.MeanActive = float64(activeSum) / float64(len(res.Slots))
	}
	return res
}
