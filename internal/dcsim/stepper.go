package dcsim

import (
	"fmt"

	"repro/internal/alloc"
)

// Stepper advances a simulation one slot at a time over the same
// run-scoped state a batch Run uses: the DVFS-level lookup tables,
// the packed prediction windows and the reusable scratch buffers are
// built once at construction and shared by every Step, so stepping a
// window to completion is the batch run — not a re-derivation of it.
// Run itself is implemented as a Stepper driven to exhaustion, which
// is what makes "incremental equals batch" true by construction
// rather than by test.
//
// This is the incremental primitive the live fleet service
// (internal/serve) ticks: a daemon that replays a trace slot by slot
// holds one Stepper per datacenter and calls Step on every tick,
// paying the per-run table construction once instead of once per
// slot. The StartSlot/NumSlots/InitialActiveServers window knobs in
// Config apply unchanged — a Stepper over a window steps exactly that
// window.
//
// A Stepper is not safe for concurrent use; callers serialise Step
// (the service steps under its own lock).
type Stepper struct {
	cfg  Config
	st   *runState
	next int
}

// NewStepper validates cfg and builds the run state (lookup tables,
// scratch buffers) without simulating any slot.
func NewStepper(cfg Config) (*Stepper, error) {
	s := &Stepper{cfg: cfg}
	st, err := newRunState(&s.cfg)
	if err != nil {
		return nil, err
	}
	s.st = st
	s.next = st.first
	return s, nil
}

// Slots returns how many slots the stepper's window spans in total.
func (s *Stepper) Slots() int { return s.st.last - s.st.first }

// Done reports whether every slot of the window has been stepped.
func (s *Stepper) Done() bool { return s.next >= s.st.last }

// Step simulates the next slot of the window and returns its result.
// Stepping past the window is an error, as is any simulation failure
// (the stepper is then poisoned — a slot cannot be retried, because
// the slot loop's carried state has already advanced). The one
// retryable refusal is a gated slot: with a Config.Source that has
// not released the next slot, Step returns an error wrapping
// ErrAwaitingSamples and advances nothing.
func (s *Stepper) Step() (SlotResult, error) {
	if s.Done() {
		return SlotResult{}, fmt.Errorf("dcsim: stepper exhausted: all %d slots of window [%d, %d) stepped",
			s.Slots(), s.st.first, s.st.last)
	}
	if src := s.cfg.Source; src != nil && !src.SlotReady(s.next) {
		return SlotResult{}, fmt.Errorf("dcsim: slot %d: %w", s.next, ErrAwaitingSamples)
	}
	if err := s.st.step(s.next); err != nil {
		return SlotResult{}, err
	}
	s.next++
	return s.st.slots[len(s.st.slots)-1], nil
}

// Clone returns an independent stepper carrying this one's state: the
// clone resumes at the same next slot with the same accumulated
// results and transition continuity (prevAsg, shared read-only), and
// stepping it never affects the original. pol, when non-nil, replaces
// the allocation policy — callers that step original and clone
// concurrently must pass a fresh instance, since policies are not
// required to allocate concurrently. The registered policies derive
// each slot's allocation from that slot's demand alone, so a fresh
// instance continues bit-exactly (the window-concatenation property
// the stepper tests pin).
//
// Immutable run state (DVFS-level tables, the trace and prediction
// rows) is shared; mutable state (slot results, scratch buffers) is
// copied or rebuilt.
func (s *Stepper) Clone(pol alloc.Policy) *Stepper {
	c := &Stepper{cfg: s.cfg, next: s.next}
	if pol != nil {
		c.cfg.Policy = pol
	}
	c.st = s.st.clone(&c.cfg)
	return c
}

// Finish aggregates the slots stepped so far into a Result. After
// stepping the whole window it returns exactly what Run would have;
// called early it aggregates the prefix (the live service's
// "series so far" view).
func (s *Stepper) Finish() *Result { return s.st.finish() }
