package dcsim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config parameterises one data-center run.
type Config struct {
	// Trace supplies the actual VM behaviour (history + evaluation).
	Trace *trace.Trace

	// Predictions feed the allocator; build them with Predict. The
	// evaluated period is the last len(Predictions.CPU[0]) samples
	// implied by HistoryDays/EvalDays.
	Predictions *PredictionSet

	// HistoryDays and EvalDays split the trace; they must match the
	// prediction set.
	HistoryDays, EvalDays int

	// Policy allocates VMs each slot.
	Policy alloc.Policy

	// Server is the power model of every machine in the pool (any
	// power.Model; the FDSOI ServerModel is the default).
	Server power.Model

	// Platform supplies the performance observables (WFM fractions,
	// memory traffic) per workload class.
	Platform *platform.Platform

	// MaxServers bounds the pool (600 in the paper). Allocations
	// beyond it are counted as capacity violations on the overflow
	// servers.
	MaxServers int

	// StartSlot and NumSlots window the simulation inside the
	// evaluation period, in allocation slots: Run simulates slots
	// [StartSlot, StartSlot+NumSlots). The zero values keep the whole
	// period (NumSlots 0 = every slot from StartSlot on). The epoch
	// rebalancer (internal/topology) simulates one epoch at a time;
	// plain runs leave both zero.
	StartSlot, NumSlots int

	// InitialActiveServers seeds the transition accounting: how many
	// servers were already powered on before the first simulated slot.
	// 0 is the historical cold start, where every first-slot server
	// pays the power-on cost; the rebalancer passes each epoch's
	// closing count into the next so epoch boundaries are not
	// mis-billed as mass boot storms.
	InitialActiveServers int

	// Transitions prices server power-state changes and VM
	// migrations between slots. The zero value reproduces the paper
	// (no transition costs); DefaultTransitions enables the extension
	// accounting.
	Transitions TransitionModel

	// TraceLabel optionally records where Trace came from (an
	// ingestion-backend spec like "csv:week.csv"); it is carried into
	// Result.Trace for provenance and defaults to "synthetic".
	TraceLabel string

	// Source, when non-nil, gates the replay on data availability:
	// Stepper.Step refuses (with ErrAwaitingSamples, without
	// advancing or poisoning itself) to simulate a slot the source
	// has not released. A LiveFeed is both the source and the
	// provider of Trace/Predictions; batch replays leave it nil. A
	// batch Run with a source errors unless every slot of its window
	// is released.
	Source SlotSource
}

// SlotResult aggregates one time slot (1 hour, 12 samples).
type SlotResult struct {
	Slot          int
	ActiveServers int

	// Violations counts overutilised server-samples: a server whose
	// actual aggregated CPU demand exceeds its full capacity at F_max
	// (beyond what raising the frequency can deliver) or whose memory
	// demand exceeds physical memory, at one 5-minute sample.
	Violations int

	// Energy is the data-center energy consumed during the slot.
	Energy units.Energy

	// TransitionEnergy is the extra cost of power-state changes and
	// migrations entering this slot (zero under the paper-faithful
	// transition model). It is included in Energy.
	TransitionEnergy units.Energy

	// Migrations is the number of VMs that changed servers entering
	// this slot.
	Migrations int

	// PlannedFreq is the allocator's cap frequency for the slot.
	PlannedFreq units.Frequency
}

// Result is a full run.
type Result struct {
	Policy    string
	Predictor string

	// Trace is the ingestion-backend spec of the replayed trace (the
	// Config.TraceLabel provenance).
	Trace string

	Slots       []SlotResult
	TotalEnergy units.Energy
	TotalViol   int
	MeanActive  float64
	PeakActive  int

	// TotalMigrations and TotalTransitionEnergy aggregate the
	// extension accounting (zero under the paper-faithful model).
	TotalMigrations       int
	TotalTransitionEnergy units.Energy
}

// EnergyPerSlotMJ returns the per-slot energy series in megajoules
// (the Fig. 6 series).
func (r *Result) EnergyPerSlotMJ() []float64 {
	out := make([]float64, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.Energy.MJ()
	}
	return out
}

// ViolationsPerSlot returns the Fig. 4 series.
func (r *Result) ViolationsPerSlot() []int {
	out := make([]int, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.Violations
	}
	return out
}

// MeanPlannedFreqGHz returns the allocator's mean cap frequency over
// the horizon (the Fig. 7 frequency column), 0 with no slots.
func (r *Result) MeanPlannedFreqGHz() float64 {
	if len(r.Slots) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Slots {
		sum += s.PlannedFreq.GHz()
	}
	return sum / float64(len(r.Slots))
}

// ActiveServersPerSlot returns the Fig. 5 series.
func (r *Result) ActiveServersPerSlot() []int {
	out := make([]int, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.ActiveServers
	}
	return out
}

// Run simulates the evaluation period slot by slot. The heavy lifting
// lives in runState (buffers.go): per-run lookup tables keyed by DVFS
// level and reusable scratch buffers keep the slot loop allocation-free.
// Run is a Stepper driven to exhaustion, so a caller stepping the same
// window one slot at a time computes the identical result.
func Run(cfg Config) (*Result, error) {
	st, err := NewStepper(cfg)
	if err != nil {
		return nil, err
	}
	for !st.Done() {
		if _, err := st.Step(); err != nil {
			return nil, err
		}
	}
	return st.Finish(), nil
}

// residentSets fills out with each VM's resident memory in bytes at
// sample abs (its utilisation of the 1 GB container). The bound is an
// invariant established by validate — the evaluation window lies
// inside the trace and all rows have uniform length — so an
// out-of-range sample means the trace was swapped or truncated after
// validation and is reported as an error rather than silently priced
// as zero resident memory (which would under-bill migrations).
func residentSets(tr *trace.Trace, abs int, out []float64) error {
	if abs < 0 || abs >= tr.Samples() {
		return fmt.Errorf("dcsim: resident-set sample %d outside trace (%d samples); trace modified after validation?",
			abs, tr.Samples())
	}
	for v, vm := range tr.VMs {
		out[v] = vm.Mem[abs] / 100 * float64(1<<30)
	}
	return nil
}

// validatedTraces memoises successful trace.Trace.Validate calls by
// pointer. Traces are shared read-only across scenarios (the trace
// package's contract), and sweeps replay the same trace thousands of
// times — revalidating ~300k samples per Run is pure overhead. Only
// success is cached; invalid traces are re-checked every time.
var validatedTraces sync.Map // *trace.Trace → struct{}

func validate(cfg *Config) error {
	switch {
	case cfg.Trace == nil:
		return errors.New("dcsim: nil trace")
	case cfg.Policy == nil:
		return errors.New("dcsim: nil policy")
	case cfg.Server == nil:
		return errors.New("dcsim: nil server model")
	case cfg.Platform == nil:
		return errors.New("dcsim: nil platform")
	case cfg.Predictions == nil:
		return errors.New("dcsim: nil predictions (build with Predict)")
	case cfg.HistoryDays <= 0 || cfg.EvalDays <= 0:
		return errors.New("dcsim: HistoryDays and EvalDays must be positive")
	}
	if _, ok := validatedTraces.Load(cfg.Trace); !ok {
		if err := cfg.Trace.Validate(); err != nil {
			return err
		}
		validatedTraces.Store(cfg.Trace, struct{}{})
	}
	wantSamples := cfg.EvalDays * trace.SamplesPerDay
	if len(cfg.Predictions.CPU) != len(cfg.Trace.VMs) {
		return fmt.Errorf("dcsim: predictions cover %d VMs, trace has %d",
			len(cfg.Predictions.CPU), len(cfg.Trace.VMs))
	}
	if len(cfg.Predictions.Mem) != len(cfg.Trace.VMs) {
		return fmt.Errorf("dcsim: memory predictions cover %d VMs, trace has %d",
			len(cfg.Predictions.Mem), len(cfg.Trace.VMs))
	}
	// Check every row, not just CPU[0]: the slot loop slices
	// Predictions.CPU[v][lo:hi] and Predictions.Mem[v][lo:hi] for all
	// v, so one short row would panic mid-run.
	for v := range cfg.Predictions.CPU {
		if got := len(cfg.Predictions.CPU[v]); got < wantSamples {
			return fmt.Errorf("dcsim: CPU predictions for VM %d cover %d samples, need %d",
				v, got, wantSamples)
		}
		if got := len(cfg.Predictions.Mem[v]); got < wantSamples {
			return fmt.Errorf("dcsim: memory predictions for VM %d cover %d samples, need %d",
				v, got, wantSamples)
		}
	}
	total := (cfg.HistoryDays + cfg.EvalDays) * trace.SamplesPerDay
	if cfg.Trace.Samples() < total {
		return fmt.Errorf("dcsim: trace has %d samples, need %d", cfg.Trace.Samples(), total)
	}
	slots := cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	if cfg.StartSlot < 0 || cfg.NumSlots < 0 || cfg.StartSlot+cfg.NumSlots > slots ||
		(cfg.NumSlots == 0 && cfg.StartSlot > slots) {
		return fmt.Errorf("dcsim: slot window [%d, %d) outside the %d-slot evaluation period",
			cfg.StartSlot, cfg.StartSlot+cfg.NumSlots, slots)
	}
	if cfg.InitialActiveServers < 0 {
		return fmt.Errorf("dcsim: InitialActiveServers must be >= 0, got %d", cfg.InitialActiveServers)
	}
	return nil
}
