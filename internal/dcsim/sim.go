package dcsim

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/perf"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config parameterises one data-center run.
type Config struct {
	// Trace supplies the actual VM behaviour (history + evaluation).
	Trace *trace.Trace

	// Predictions feed the allocator; build them with Predict. The
	// evaluated period is the last len(Predictions.CPU[0]) samples
	// implied by HistoryDays/EvalDays.
	Predictions *PredictionSet

	// HistoryDays and EvalDays split the trace; they must match the
	// prediction set.
	HistoryDays, EvalDays int

	// Policy allocates VMs each slot.
	Policy alloc.Policy

	// Server is the power model of every machine in the pool.
	Server *power.ServerModel

	// Platform supplies the performance observables (WFM fractions,
	// memory traffic) per workload class.
	Platform *platform.Platform

	// MaxServers bounds the pool (600 in the paper). Allocations
	// beyond it are counted as capacity violations on the overflow
	// servers.
	MaxServers int

	// StartSlot and NumSlots window the simulation inside the
	// evaluation period, in allocation slots: Run simulates slots
	// [StartSlot, StartSlot+NumSlots). The zero values keep the whole
	// period (NumSlots 0 = every slot from StartSlot on). The epoch
	// rebalancer (internal/topology) simulates one epoch at a time;
	// plain runs leave both zero.
	StartSlot, NumSlots int

	// InitialActiveServers seeds the transition accounting: how many
	// servers were already powered on before the first simulated slot.
	// 0 is the historical cold start, where every first-slot server
	// pays the power-on cost; the rebalancer passes each epoch's
	// closing count into the next so epoch boundaries are not
	// mis-billed as mass boot storms.
	InitialActiveServers int

	// Transitions prices server power-state changes and VM
	// migrations between slots. The zero value reproduces the paper
	// (no transition costs); DefaultTransitions enables the extension
	// accounting.
	Transitions TransitionModel

	// TraceLabel optionally records where Trace came from (an
	// ingestion-backend spec like "csv:week.csv"); it is carried into
	// Result.Trace for provenance and defaults to "synthetic".
	TraceLabel string
}

// SlotResult aggregates one time slot (1 hour, 12 samples).
type SlotResult struct {
	Slot          int
	ActiveServers int

	// Violations counts overutilised server-samples: a server whose
	// actual aggregated CPU demand exceeds its full capacity at F_max
	// (beyond what raising the frequency can deliver) or whose memory
	// demand exceeds physical memory, at one 5-minute sample.
	Violations int

	// Energy is the data-center energy consumed during the slot.
	Energy units.Energy

	// TransitionEnergy is the extra cost of power-state changes and
	// migrations entering this slot (zero under the paper-faithful
	// transition model). It is included in Energy.
	TransitionEnergy units.Energy

	// Migrations is the number of VMs that changed servers entering
	// this slot.
	Migrations int

	// PlannedFreq is the allocator's cap frequency for the slot.
	PlannedFreq units.Frequency
}

// Result is a full run.
type Result struct {
	Policy    string
	Predictor string

	// Trace is the ingestion-backend spec of the replayed trace (the
	// Config.TraceLabel provenance).
	Trace string

	Slots       []SlotResult
	TotalEnergy units.Energy
	TotalViol   int
	MeanActive  float64
	PeakActive  int

	// TotalMigrations and TotalTransitionEnergy aggregate the
	// extension accounting (zero under the paper-faithful model).
	TotalMigrations       int
	TotalTransitionEnergy units.Energy
}

// EnergyPerSlotMJ returns the per-slot energy series in megajoules
// (the Fig. 6 series).
func (r *Result) EnergyPerSlotMJ() []float64 {
	out := make([]float64, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.Energy.MJ()
	}
	return out
}

// ViolationsPerSlot returns the Fig. 4 series.
func (r *Result) ViolationsPerSlot() []int {
	out := make([]int, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.Violations
	}
	return out
}

// MeanPlannedFreqGHz returns the allocator's mean cap frequency over
// the horizon (the Fig. 7 frequency column), 0 with no slots.
func (r *Result) MeanPlannedFreqGHz() float64 {
	if len(r.Slots) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Slots {
		sum += s.PlannedFreq.GHz()
	}
	return sum / float64(len(r.Slots))
}

// ActiveServersPerSlot returns the Fig. 5 series.
func (r *Result) ActiveServersPerSlot() []int {
	out := make([]int, len(r.Slots))
	for i, s := range r.Slots {
		out[i] = s.ActiveServers
	}
	return out
}

// Run simulates the evaluation period slot by slot.
func Run(cfg Config) (*Result, error) {
	if err := validate(&cfg); err != nil {
		return nil, err
	}
	spec := alloc.ServerSpec{
		Cores:         cfg.Server.Cores,
		MemContainers: cfg.Server.DRAM.Capacity.GB(),
		FMax:          cfg.Server.FMax,
		FMin:          cfg.Server.FMin,
	}
	evalStart := cfg.HistoryDays * trace.SamplesPerDay
	slots := cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	nVMs := len(cfg.Trace.VMs)

	label := cfg.TraceLabel
	if label == "" {
		label = "synthetic"
	}
	res := &Result{Policy: cfg.Policy.Name(), Predictor: cfg.Predictions.Predictor, Trace: label}
	sampleSec := cfg.Trace.Interval.Seconds()

	first, last := cfg.StartSlot, slots
	if cfg.NumSlots > 0 {
		last = first + cfg.NumSlots
	}
	var prevAsg *alloc.Assignment
	for s := first; s < last; s++ {
		lo := s * trace.SamplesPerSlot // offset within the eval period
		hi := lo + trace.SamplesPerSlot

		// 1) Build the predicted demands for this slot.
		vms := make([]alloc.VMDemand, nVMs)
		for v := 0; v < nVMs; v++ {
			vms[v] = alloc.VMDemand{
				ID:  v,
				CPU: cfg.Predictions.CPU[v][lo:hi],
				Mem: cfg.Predictions.Mem[v][lo:hi],
			}
		}

		// 2) Allocate.
		asg, err := cfg.Policy.Allocate(vms, spec)
		if err != nil {
			return nil, fmt.Errorf("dcsim: slot %d: %w", s, err)
		}

		// 3) Replay the actual traces against the assignment.
		slot, err := replaySlot(&cfg, spec, asg, evalStart+lo, sampleSec)
		if err != nil {
			return nil, fmt.Errorf("dcsim: slot %d: %w", s, err)
		}
		slot.Slot = s
		slot.PlannedFreq = asg.PlannedFreq

		// 4) Transition accounting (zero under the paper model).
		if cfg.Transitions != (TransitionModel{}) {
			memBytes := residentSets(cfg.Trace, evalStart+lo)
			te, stats := cfg.Transitions.slotTransitionEnergy(prevAsg, asg, memBytes, cfg.InitialActiveServers)
			slot.TransitionEnergy = te
			slot.Migrations = stats.Migrations
			slot.Energy += te
		}
		prevAsg = asg
		res.Slots = append(res.Slots, slot)
	}

	// Aggregate.
	var activeSum int
	for _, s := range res.Slots {
		res.TotalEnergy += s.Energy
		res.TotalViol += s.Violations
		res.TotalMigrations += s.Migrations
		res.TotalTransitionEnergy += s.TransitionEnergy
		activeSum += s.ActiveServers
		if s.ActiveServers > res.PeakActive {
			res.PeakActive = s.ActiveServers
		}
	}
	if len(res.Slots) > 0 {
		res.MeanActive = float64(activeSum) / float64(len(res.Slots))
	}
	return res, nil
}

// residentSets returns each VM's resident memory in bytes at sample
// abs (its utilisation of the 1 GB container).
func residentSets(tr *trace.Trace, abs int) []float64 {
	out := make([]float64, len(tr.VMs))
	for v, vm := range tr.VMs {
		if abs < len(vm.Mem) {
			out[v] = vm.Mem[abs] / 100 * float64(1<<30)
		}
	}
	return out
}

// replaySlot plays the actual traces of one slot against an
// assignment: per server and sample it runs the shared online DVFS
// governor, integrates power, and counts overutilisation.
func replaySlot(cfg *Config, spec alloc.ServerSpec, asg *alloc.Assignment, absLo int, sampleSec float64) (SlotResult, error) {
	var out SlotResult
	// Deliverable CPU capacity: demand beyond it is a violation. A
	// dynamic-DVFS policy can boost to F_max, so the whole capacity is
	// deliverable; a fixed-cap policy (COAT-OPT) is pinned at its
	// planned frequency and can deliver only the corresponding share —
	// the paper's "less control on violations ... using a fixed cap".
	capCPU := spec.CPUPoints()
	if asg.FixedFreq {
		capCPU = spec.CPUPoints() * asg.PlannedFreq.GHz() / spec.FMax.GHz()
	}
	capMem := spec.MemPoints()

	active := 0
	for _, srv := range asg.Servers {
		if len(srv.VMs) == 0 {
			continue
		}
		active++
		for i := 0; i < trace.SamplesPerSlot; i++ {
			abs := absLo + i
			// Aggregate actual demand per class.
			var cpuByClass [3]float64
			var cpuTotal, memTotal float64
			for _, v := range srv.VMs {
				vm := cfg.Trace.VMs[v]
				cpuByClass[vm.Class] += vm.CPU[abs]
				cpuTotal += vm.CPU[abs]
				memTotal += vm.Mem[abs]
			}

			// Overutilisation accounting (Fig. 4): demand beyond the
			// server's deliverable capacity even at F_max, or beyond
			// physical memory.
			if cpuTotal > capCPU+1e-9 || memTotal > capMem+1e-9 {
				out.Violations++
			}

			// Online DVFS governor: the lowest level that delivers the
			// demand (clipped at F_max when overloaded). Fixed-cap
			// policies run pinned at their planned frequency instead.
			var f units.Frequency
			if asg.FixedFreq {
				f = asg.PlannedFreq
			} else {
				needGHz := cpuTotal / spec.CPUPoints() * spec.FMax.GHz()
				f = cfg.Server.ClampFrequency(units.GHz(needGHz))
			}

			// Busy core-equivalents at the chosen frequency.
			scale := spec.FMax.GHz() / f.GHz()
			busy := cpuTotal / 100 * scale
			if busy > float64(spec.Cores) {
				busy = float64(spec.Cores)
			}

			// Per-class observables scale with the class's busy cores.
			var wfm, llcR, llcW, memR, memW float64
			for c := 0; c < 3; c++ {
				if cpuByClass[c] == 0 {
					continue
				}
				classBusy := cpuByClass[c] / 100 * scale
				obs := perf.Observe(cfg.Platform, workload.Class(c), f, 1)
				wfm += classBusy * obs.WFMFraction
				llcR += classBusy * obs.LLCReadsPerSec
				llcW += classBusy * obs.LLCWritesPerSec
				memR += classBusy * obs.MemReadBytesPerSec
				memW += classBusy * obs.MemWriteBytesPerSec
			}
			if busy > 0 {
				wfm /= busy
			}

			op := power.OperatingPoint{
				Freq:                f,
				BusyCores:           busy,
				WFMFraction:         wfm,
				LLCReadsPerSec:      llcR,
				LLCWritesPerSec:     llcW,
				MemReadBytesPerSec:  memR,
				MemWriteBytesPerSec: memW,
			}
			out.Energy += units.EnergyOver(cfg.Server.Power(op), sampleSec)
		}
	}
	out.ActiveServers = active

	// Pool-cap accounting: servers beyond the physical pool count as
	// violations for every sample of the slot.
	if cfg.MaxServers > 0 && active > cfg.MaxServers {
		out.Violations += (active - cfg.MaxServers) * trace.SamplesPerSlot
	}
	return out, nil
}

func validate(cfg *Config) error {
	switch {
	case cfg.Trace == nil:
		return errors.New("dcsim: nil trace")
	case cfg.Policy == nil:
		return errors.New("dcsim: nil policy")
	case cfg.Server == nil:
		return errors.New("dcsim: nil server model")
	case cfg.Platform == nil:
		return errors.New("dcsim: nil platform")
	case cfg.Predictions == nil:
		return errors.New("dcsim: nil predictions (build with Predict)")
	case cfg.HistoryDays <= 0 || cfg.EvalDays <= 0:
		return errors.New("dcsim: HistoryDays and EvalDays must be positive")
	}
	if err := cfg.Trace.Validate(); err != nil {
		return err
	}
	wantSamples := cfg.EvalDays * trace.SamplesPerDay
	if len(cfg.Predictions.CPU) != len(cfg.Trace.VMs) {
		return fmt.Errorf("dcsim: predictions cover %d VMs, trace has %d",
			len(cfg.Predictions.CPU), len(cfg.Trace.VMs))
	}
	if len(cfg.Predictions.CPU[0]) < wantSamples {
		return fmt.Errorf("dcsim: predictions cover %d samples, need %d",
			len(cfg.Predictions.CPU[0]), wantSamples)
	}
	total := (cfg.HistoryDays + cfg.EvalDays) * trace.SamplesPerDay
	if cfg.Trace.Samples() < total {
		return fmt.Errorf("dcsim: trace has %d samples, need %d", cfg.Trace.Samples(), total)
	}
	slots := cfg.EvalDays * trace.SamplesPerDay / trace.SamplesPerSlot
	if cfg.StartSlot < 0 || cfg.NumSlots < 0 || cfg.StartSlot+cfg.NumSlots > slots ||
		(cfg.NumSlots == 0 && cfg.StartSlot > slots) {
		return fmt.Errorf("dcsim: slot window [%d, %d) outside the %d-slot evaluation period",
			cfg.StartSlot, cfg.StartSlot+cfg.NumSlots, slots)
	}
	if cfg.InitialActiveServers < 0 {
		return fmt.Errorf("dcsim: InitialActiveServers must be >= 0, got %d", cfg.InitialActiveServers)
	}
	return nil
}
