package dcsim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/units"
)

func TestZeroTransitionsMatchPaperModel(t *testing.T) {
	tr := testTrace(t, 50)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	base := testConfig(t, tr, alloc.NewCOAT(spec), ps)
	resZero, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if resZero.TotalTransitionEnergy != 0 || resZero.TotalMigrations != 0 {
		t.Errorf("zero model recorded transitions: %v / %d",
			resZero.TotalTransitionEnergy, resZero.TotalMigrations)
	}
}

func TestTransitionCostsIncreaseEnergy(t *testing.T) {
	tr := testTrace(t, 50)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	base := testConfig(t, tr, alloc.NewCOAT(spec), ps)
	resZero, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	withCosts := base
	withCosts.Transitions = DefaultTransitions()
	resCosts, err := Run(withCosts)
	if err != nil {
		t.Fatal(err)
	}
	if resCosts.TotalEnergy <= resZero.TotalEnergy {
		t.Errorf("transition costs did not increase energy: %v vs %v",
			resCosts.TotalEnergy, resZero.TotalEnergy)
	}
	if resCosts.TotalTransitionEnergy <= 0 {
		t.Error("no transition energy recorded")
	}
	// Re-allocating every hour with fresh FFD orders must migrate at
	// least some VMs at some point.
	if resCosts.TotalMigrations == 0 {
		t.Error("no migrations recorded across 48 hourly re-allocations")
	}
	// The paper-level conclusion survives realistic transition costs:
	// they are small next to server energy (< 10% here).
	if frac := resCosts.TotalTransitionEnergy.J() / resCosts.TotalEnergy.J(); frac > 0.10 {
		t.Errorf("transition energy fraction = %.2f, want < 0.10", frac)
	}
}

func TestSlotTransitionEnergyInitialPlacement(t *testing.T) {
	m := DefaultTransitions()
	next := &alloc.Assignment{Servers: []*alloc.ServerPlan{
		{VMs: []int{0}}, {VMs: []int{1}}, {},
	}, VMServer: []int{0, 1}}
	e, stats := m.slotTransitionEnergy(nil, next, nil, 0)
	// Two active servers power on; no migrations on first placement.
	if want := units.Energy(2 * 5 * units.Kilojoule); e != want {
		t.Errorf("initial energy = %v, want %v", e, want)
	}
	if stats.Migrations != 0 {
		t.Errorf("initial migrations = %d, want 0", stats.Migrations)
	}
}

func TestSlotTransitionEnergyScaleUpAndDown(t *testing.T) {
	m := DefaultTransitions()
	one := &alloc.Assignment{Servers: []*alloc.ServerPlan{{VMs: []int{0, 1}}},
		VMServer: []int{0, 0}}
	two := &alloc.Assignment{Servers: []*alloc.ServerPlan{{VMs: []int{0}}, {VMs: []int{1}}},
		VMServer: []int{0, 1}}

	up, _ := m.slotTransitionEnergy(one, two, []float64{1e9, 1e9}, 0)
	if up.J() < 5000 {
		t.Errorf("scale-up energy = %v, want >= one boot (5 kJ)", up)
	}
	down, _ := m.slotTransitionEnergy(two, one, []float64{1e9, 1e9}, 0)
	if down.J() < 1000 {
		t.Errorf("scale-down energy = %v, want >= one shutdown (1 kJ)", down)
	}
	if up <= down {
		t.Error("boot should cost more than shutdown here (same migration part)")
	}
}
