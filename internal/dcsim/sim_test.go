package dcsim

import (
	"math"
	"testing"

	"repro/internal/alloc"
	"repro/internal/forecast"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

// testTrace builds a small 9-day trace (7 history + 2 eval) so tests
// stay fast while exercising the full pipeline.
func testTrace(t *testing.T, vms int) *trace.Trace {
	t.Helper()
	cfg := trace.DefaultConfig(17)
	cfg.VMs = vms
	cfg.Days = 9
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testConfig(t *testing.T, tr *trace.Trace, pol alloc.Policy, ps *PredictionSet) Config {
	t.Helper()
	return Config{
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 7,
		EvalDays:    2,
		Policy:      pol,
		Server:      power.NTCServer(),
		Platform:    platform.NTCServer(),
		MaxServers:  600,
	}
}

func oracle(t *testing.T, tr *trace.Trace) *PredictionSet {
	t.Helper()
	ps, err := Predict(tr, nil, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestPredictOracleEqualsActual(t *testing.T) {
	tr := testTrace(t, 20)
	ps := oracle(t, tr)
	if ps.Predictor != "oracle" {
		t.Errorf("predictor = %q, want oracle", ps.Predictor)
	}
	evalStart := 7 * trace.SamplesPerDay
	for v := range tr.VMs {
		for i := 0; i < 2*trace.SamplesPerDay; i++ {
			if ps.CPU[v][i] != tr.VMs[v].CPU[evalStart+i] {
				t.Fatalf("oracle CPU mismatch at VM %d sample %d", v, i)
			}
		}
	}
}

func TestPredictARIMAWithinRange(t *testing.T) {
	tr := testTrace(t, 12)
	ps, err := Predict(tr, &forecast.ARIMA{Cfg: forecast.DefaultConfig()}, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Predictor == "oracle" {
		t.Error("predictor name not propagated")
	}
	for v := range ps.CPU {
		if len(ps.CPU[v]) != 2*trace.SamplesPerDay {
			t.Fatalf("VM %d: %d samples, want %d", v, len(ps.CPU[v]), 2*trace.SamplesPerDay)
		}
		for i, p := range ps.CPU[v] {
			if p < 0 || p > 100 || math.IsNaN(p) {
				t.Fatalf("VM %d forecast[%d] = %v", v, i, p)
			}
		}
	}
}

func TestPredictValidation(t *testing.T) {
	tr := testTrace(t, 5)
	if _, err := Predict(tr, nil, 0, 2); err == nil {
		t.Error("historyDays=0 accepted")
	}
	if _, err := Predict(tr, nil, 7, 20); err == nil {
		t.Error("eval beyond trace accepted")
	}
}

func TestRunProducesConsistentSlots(t *testing.T) {
	tr := testTrace(t, 60)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	res, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slots) != 48 {
		t.Fatalf("slots = %d, want 48 (2 days)", len(res.Slots))
	}
	for _, s := range res.Slots {
		if s.Energy <= 0 {
			t.Errorf("slot %d: non-positive energy", s.Slot)
		}
		if s.ActiveServers <= 0 {
			t.Errorf("slot %d: no active servers", s.Slot)
		}
		if s.Violations < 0 {
			t.Errorf("slot %d: negative violations", s.Slot)
		}
	}
	if res.TotalEnergy <= 0 || res.MeanActive <= 0 {
		t.Error("aggregates not populated")
	}
	if res.PeakActive < int(res.MeanActive) {
		t.Error("peak active below mean")
	}
}

func TestOracleRunHasNoViolationsForEPACT(t *testing.T) {
	// With perfect predictions and EPACT's slack (packing to ≈61% of
	// capacity while 100% is deliverable), overutilisation should be
	// essentially absent.
	tr := testTrace(t, 60)
	ps := oracle(t, tr)
	res, err := Run(testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalViol != 0 {
		t.Errorf("EPACT oracle violations = %d, want 0", res.TotalViol)
	}
}

func TestEPACTUsesMoreServersButLessEnergyThanCOAT(t *testing.T) {
	// The paper's core result (Figs. 5 and 6): consolidation (COAT)
	// activates fewer servers yet consumes more energy on NTC
	// servers.
	tr := testTrace(t, 80)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	epact, err := Run(testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps))
	if err != nil {
		t.Fatal(err)
	}
	coat, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps))
	if err != nil {
		t.Fatal(err)
	}
	if epact.MeanActive <= coat.MeanActive {
		t.Errorf("EPACT mean active %.1f should exceed COAT %.1f", epact.MeanActive, coat.MeanActive)
	}
	if epact.TotalEnergy >= coat.TotalEnergy {
		t.Errorf("EPACT energy %v should be below COAT %v", epact.TotalEnergy, coat.TotalEnergy)
	}
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t, 10)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	good := testConfig(t, tr, alloc.NewCOAT(spec), ps)

	bad := good
	bad.Trace = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil trace accepted")
	}
	bad = good
	bad.Policy = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil policy accepted")
	}
	bad = good
	bad.Predictions = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil predictions accepted")
	}
	bad = good
	bad.EvalDays = 5
	if _, err := Run(bad); err == nil {
		t.Error("eval beyond predictions accepted")
	}
}

func TestSeriesAccessors(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	res, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.EnergyPerSlotMJ()) != len(res.Slots) ||
		len(res.ViolationsPerSlot()) != len(res.Slots) ||
		len(res.ActiveServersPerSlot()) != len(res.Slots) {
		t.Error("series accessors disagree with slot count")
	}
}

func TestFixedFreqPolicyDeliversLessCapacity(t *testing.T) {
	// COAT-OPT's fixed cap means its servers cannot boost past the
	// planned frequency: for the same trace it must register at least
	// as many violations as a dynamic policy with the same packing.
	tr := testTrace(t, 60)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	fixed, err := Run(testConfig(t, tr, alloc.NewCOATOPT(spec, units.GHz(1.9)), ps))
	if err != nil {
		t.Fatal(err)
	}
	// The same cap but with boost allowed (a COAT at 61% cap without
	// FixedFreq) must violate strictly less.
	flexible := &alloc.COAT{CapFrac: 1.9 / 3.1, PlannedFreq: units.GHz(1.9),
		CorrThreshold: 0.5, Label: "COAT-OPT-flexible"}
	flex, err := Run(testConfig(t, tr, flexible, ps))
	if err != nil {
		t.Fatal(err)
	}
	if fixed.TotalViol < flex.TotalViol {
		t.Errorf("fixed-cap violations %d below boost-capable %d", fixed.TotalViol, flex.TotalViol)
	}
	// With oracle predictions and 39%-of-capacity headroom, the
	// boost-capable variant should see none at all.
	if flex.TotalViol != 0 {
		t.Errorf("boost-capable variant violated %d times under oracle predictions", flex.TotalViol)
	}
}

func TestValidateChecksEveryPredictionRow(t *testing.T) {
	// Regression: validate used to check only Predictions.CPU[0], so a
	// short row further down (or a short memory row anywhere) would
	// slip through and panic mid-run when the slot loop sliced it.
	tr := testTrace(t, 10)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	ps := oracle(t, tr)
	ps.CPU[3] = ps.CPU[3][:5]
	if _, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps)); err == nil {
		t.Error("short CPU row 3 accepted")
	}

	ps = oracle(t, tr)
	ps.Mem[7] = ps.Mem[7][:5]
	if _, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps)); err == nil {
		t.Error("short memory row 7 accepted")
	}

	ps = oracle(t, tr)
	ps.Mem = ps.Mem[:4]
	if _, err := Run(testConfig(t, tr, alloc.NewCOAT(spec), ps)); err == nil {
		t.Error("memory rows for only 4 of 10 VMs accepted")
	}
}

func TestResidentSetsBoundsAreAnInvariant(t *testing.T) {
	// Regression: residentSets used to treat an out-of-range sample as
	// zero resident memory, silently under-billing migrations. The
	// bound is an invariant validate establishes, so breaking it must
	// surface as an error.
	tr := testTrace(t, 6)
	out := make([]float64, len(tr.VMs))
	for _, abs := range []int{-1, tr.Samples(), tr.Samples() + 100} {
		if err := residentSets(tr, abs, out); err == nil {
			t.Errorf("sample %d outside the %d-sample trace accepted", abs, tr.Samples())
		}
	}
	if err := residentSets(tr, tr.Samples()-1, out); err != nil {
		t.Fatalf("in-range sample rejected: %v", err)
	}
	for v, vm := range tr.VMs {
		want := vm.Mem[tr.Samples()-1] / 100 * float64(1<<30)
		if out[v] != want {
			t.Fatalf("VM %d resident set = %v, want %v", v, out[v], want)
		}
	}
}

// TestWindowedRunsConcatenate pins the StartSlot/NumSlots contract the
// epoch rebalancer depends on: under the paper-faithful transition
// model (the zero value), a full run equals the concatenation of any
// epoch windows covering the same period, with each window's closing
// active-server count carried into the next via InitialActiveServers.
func TestWindowedRunsConcatenate(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)

	run := func(start, num, initial int) *Result {
		cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
		cfg.StartSlot, cfg.NumSlots = start, num
		cfg.InitialActiveServers = initial
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("window [%d,+%d): %v", start, num, err)
		}
		return res
	}

	full := run(0, 0, 0)
	if len(full.Slots) != 48 {
		t.Fatalf("full run has %d slots, want 48", len(full.Slots))
	}

	// Uneven windows: 5 + 19 + 24 = 48.
	var cat []SlotResult
	initial := 0
	for _, w := range []struct{ start, num int }{{0, 5}, {5, 19}, {24, 24}} {
		res := run(w.start, w.num, initial)
		if len(res.Slots) != w.num {
			t.Fatalf("window [%d,+%d) produced %d slots", w.start, w.num, len(res.Slots))
		}
		cat = append(cat, res.Slots...)
		initial = res.Slots[len(res.Slots)-1].ActiveServers
	}

	for i := range full.Slots {
		if full.Slots[i] != cat[i] {
			t.Fatalf("slot %d differs: full %+v, windowed %+v", i, full.Slots[i], cat[i])
		}
	}
}

// stubPolicy hands back a prebuilt assignment, isolating the
// dcsim-owned slot work from whatever the real policies allocate.
type stubPolicy struct{ asg *alloc.Assignment }

func (p *stubPolicy) Name() string { return "stub" }
func (p *stubPolicy) Allocate([]alloc.VMDemand, alloc.ServerSpec) (*alloc.Assignment, error) {
	return p.asg, nil
}

// TestSlotLoopAllocationFree pins the zero-allocation contract of the
// steady-state slot loop: with the policy's own allocations factored
// out, step performs no heap allocations — the demand windows, the
// columnar replay and the slot append all run in run-scoped buffers.
func TestSlotLoopAllocationFree(t *testing.T) {
	tr := testTrace(t, 30)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}

	// A real slot-0 assignment, built once outside the measurement.
	vms := make([]alloc.VMDemand, len(tr.VMs))
	for v := range vms {
		vms[v] = alloc.VMDemand{ID: v,
			CPU: ps.CPU[v][:trace.SamplesPerSlot],
			Mem: ps.Mem[v][:trace.SamplesPerSlot]}
	}
	e := &alloc.EPACT{Model: power.NTCServer()}
	asg, err := e.Allocate(vms, spec)
	if err != nil {
		t.Fatal(err)
	}

	cfg := testConfig(t, tr, &stubPolicy{asg: asg}, ps)
	st, err := newRunState(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		st.slots = st.slots[:0]
		if err := st.step(0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("slot loop allocates %.0f times per step, want 0", allocs)
	}
}

func TestPoolCapViolations(t *testing.T) {
	// A tiny pool must register overflow violations.
	tr := testTrace(t, 60)
	ps := oracle(t, tr)
	spec := alloc.ServerSpec{Cores: 16, MemContainers: 16, FMax: units.GHz(3.1), FMin: units.GHz(0.1)}
	cfg := testConfig(t, tr, alloc.NewCOAT(spec), ps)
	cfg.MaxServers = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalViol == 0 {
		t.Error("pool cap of 1 server produced no violations")
	}
}
