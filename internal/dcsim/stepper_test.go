package dcsim

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/power"
)

// TestStepSize1WindowsConcatenate extends TestWindowedRunsConcatenate
// to the degenerate window the live service ticks at: under the
// paper-faithful transition model, a full run equals the concatenation
// of single-slot windows, each seeded with the previous slot's closing
// active-server count. This is the property that lets a daemon window
// dcsim over one-slot epochs and still report batch-exact series.
func TestStepSize1WindowsConcatenate(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)

	full, err := Run(testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Slots) != 48 {
		t.Fatalf("full run has %d slots, want 48", len(full.Slots))
	}

	initial := 0
	for s := range full.Slots {
		cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
		cfg.StartSlot, cfg.NumSlots = s, 1
		cfg.InitialActiveServers = initial
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("window [%d,+1): %v", s, err)
		}
		if len(res.Slots) != 1 {
			t.Fatalf("window [%d,+1) produced %d slots", s, len(res.Slots))
		}
		if res.Slots[0] != full.Slots[s] {
			t.Fatalf("slot %d differs: full %+v, step-1 window %+v", s, full.Slots[s], res.Slots[0])
		}
		initial = res.Slots[0].ActiveServers
	}
}

// TestStepperMatchesRun pins the exported incremental hook against the
// batch entry point under a non-zero transition model — the case where
// re-windowing per slot would NOT be exact (window boundaries skip the
// slot-to-slot migration diff). The Stepper shares one run state, so
// migrations and transition energy carry across steps exactly as in a
// batch run.
func TestStepperMatchesRun(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)

	cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
	cfg.Transitions = DefaultTransitions()
	batch, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Slots() != len(batch.Slots) {
		t.Fatalf("stepper spans %d slots, batch ran %d", st.Slots(), len(batch.Slots))
	}
	for i := 0; !st.Done(); i++ {
		slot, err := st.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if slot != batch.Slots[i] {
			t.Fatalf("step %d differs: batch %+v, stepped %+v", i, batch.Slots[i], slot)
		}
	}
	if _, err := st.Step(); err == nil {
		t.Fatal("stepping past the window succeeded")
	}
	fin := st.Finish()
	if fin.TotalEnergy != batch.TotalEnergy || fin.TotalViol != batch.TotalViol ||
		fin.TotalMigrations != batch.TotalMigrations ||
		fin.TotalTransitionEnergy != batch.TotalTransitionEnergy ||
		fin.MeanActive != batch.MeanActive || fin.PeakActive != batch.PeakActive {
		t.Fatalf("aggregates differ:\nbatch  %+v\nstepped %+v", batch, fin)
	}
}
