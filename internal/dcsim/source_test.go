package dcsim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/alloc"
	"repro/internal/forecast"
	"repro/internal/power"
	"repro/internal/trace"
)

// observeSlot feeds slot s of tr's evaluation period (historyDays 7)
// into the feed — the "live" samples are the reference trace's own.
func observeSlot(t *testing.T, f *LiveFeed, tr *trace.Trace, s int) {
	t.Helper()
	abs := 7*trace.SamplesPerDay + s*trace.SamplesPerSlot
	cpu := make([][]float64, len(tr.VMs))
	mem := make([][]float64, len(tr.VMs))
	for v, vm := range tr.VMs {
		cpu[v] = vm.CPU[abs : abs+trace.SamplesPerSlot]
		mem[v] = vm.Mem[abs : abs+trace.SamplesPerSlot]
	}
	if err := f.Observe(s, cpu, mem); err != nil {
		t.Fatalf("observe slot %d: %v", s, err)
	}
}

// TestLiveFeedMatchesBatch is the ingestion acceptance pin: a stepper
// consuming a LiveFeed that is fed the reference trace's evaluation
// samples slot by slot produces per-slot results bit-exact with a
// batch Run over that trace, and the source gate refuses exactly the
// slots that have not been observed yet.
func TestLiveFeedMatchesBatch(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)
	batch, err := Run(testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps))
	if err != nil {
		t.Fatal(err)
	}

	feed, err := NewLiveFeed(tr, nil, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
	cfg.Trace = feed.Trace()
	cfg.Predictions = feed.Predictions()
	cfg.Source = feed
	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Slots() != feed.Slots() {
		t.Fatalf("stepper spans %d slots, feed %d", st.Slots(), feed.Slots())
	}

	for s := 0; s < st.Slots(); s++ {
		// Gated: the slot is not observed yet, and the refusal must
		// not poison the stepper.
		if _, err := st.Step(); !errors.Is(err, ErrAwaitingSamples) {
			t.Fatalf("slot %d: stepping unobserved slot: err = %v, want ErrAwaitingSamples", s, err)
		}
		observeSlot(t, feed, tr, s)
		slot, err := st.Step()
		if err != nil {
			t.Fatalf("slot %d after observe: %v", s, err)
		}
		if slot != batch.Slots[s] {
			t.Fatalf("slot %d differs:\nbatch %+v\nlive  %+v", s, batch.Slots[s], slot)
		}
	}
	if !st.Done() {
		t.Fatal("stepper not done after ingesting every slot")
	}
	fin := st.Finish()
	if fin.TotalEnergy != batch.TotalEnergy || fin.TotalViol != batch.TotalViol {
		t.Fatalf("aggregates differ:\nbatch %+v\nlive  %+v", batch, fin)
	}
}

// TestLiveFeedPredictorMatchesBatch pins the incremental rolling-day
// prediction bookkeeping against batch Predict: after every slot of
// the horizon is observed, the feed's prediction rows are bit-exact
// with the set Predict builds over the fully ingested trace — for a
// real predictor whose day-1 window includes observed samples.
func TestLiveFeedPredictorMatchesBatch(t *testing.T) {
	tr := testTrace(t, 8)
	pred := func() forecast.Predictor { return &forecast.ARIMA{Cfg: forecast.DefaultConfig()} }

	batch, err := Predict(tr, pred(), 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := NewLiveFeed(tr, pred(), 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := feed.Predictions().Predictor, batch.Predictor; got != want {
		t.Fatalf("feed predictor label %q, want %q", got, want)
	}
	for s := 0; s < feed.Slots(); s++ {
		observeSlot(t, feed, tr, s)
	}
	if !reflect.DeepEqual(feed.Predictions().CPU, batch.CPU) {
		t.Fatal("incremental CPU predictions differ from batch Predict")
	}
	if !reflect.DeepEqual(feed.Predictions().Mem, batch.Mem) {
		t.Fatal("incremental memory predictions differ from batch Predict")
	}
}

// TestLiveFeedValidation mirrors the CSV ingester's rejection surface:
// out-of-order slots, population mismatches, short rows and
// out-of-range values are refused without ingesting anything.
func TestLiveFeedValidation(t *testing.T) {
	tr := testTrace(t, 4)
	feed, err := NewLiveFeed(tr, nil, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	row := func(v float64) []float64 {
		r := make([]float64, trace.SamplesPerSlot)
		for i := range r {
			r[i] = v
		}
		return r
	}
	good := func() (cpu, mem [][]float64) {
		for v := 0; v < 4; v++ {
			cpu = append(cpu, row(10))
			mem = append(mem, row(20))
		}
		return cpu, mem
	}

	cpu, mem := good()
	if err := feed.Observe(1, cpu, mem); !errors.Is(err, ErrObserveOrder) {
		t.Fatalf("out-of-order observe: err = %v, want ErrObserveOrder", err)
	}
	if err := feed.Observe(48, cpu, mem); err == nil {
		t.Fatal("observe beyond the horizon accepted")
	}
	if err := feed.Observe(0, cpu[:3], mem); err == nil {
		t.Fatal("observe with a missing VM accepted")
	}
	shortCPU, shortMem := good()
	shortCPU[2] = shortCPU[2][:5]
	if err := feed.Observe(0, shortCPU, shortMem); err == nil {
		t.Fatal("observe with a short sample row accepted")
	}
	badCPU, badMem := good()
	badCPU[1][3] = 101
	if err := feed.Observe(0, badCPU, badMem); err == nil {
		t.Fatal("observe with an out-of-range cpu sample accepted")
	}
	if feed.Ingested() != 0 {
		t.Fatalf("rejected observes ingested %d slots", feed.Ingested())
	}
	if feed.SlotReady(0) {
		t.Fatal("slot 0 ready before any successful observe")
	}
	cpu, mem = good()
	if err := feed.Observe(0, cpu, mem); err != nil {
		t.Fatalf("valid observe rejected: %v", err)
	}
	if feed.Ingested() != 1 || !feed.SlotReady(0) || feed.SlotReady(1) {
		t.Fatalf("after one observe: ingested %d, ready(0)=%v ready(1)=%v",
			feed.Ingested(), feed.SlotReady(0), feed.SlotReady(1))
	}
}

// TestCloneContinuesBitExact forks a mid-run stepper under the
// non-zero transition model — the case where carried state (prevAsg,
// accumulated slots) matters — and checks clone and original continue
// identically and independently, with a fresh policy instance on the
// clone.
func TestCloneContinuesBitExact(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)
	cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
	cfg.Transitions = DefaultTransitions()

	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const fork = 20
	for i := 0; i < fork; i++ {
		if _, err := st.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	clone := st.Clone(&alloc.EPACT{Model: power.NTCServer()})
	for !st.Done() {
		want, err := st.Step()
		if err != nil {
			t.Fatal(err)
		}
		got, err := clone.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("clone diverged at slot %d:\noriginal %+v\nclone    %+v", want.Slot, want, got)
		}
	}
	if !clone.Done() {
		t.Fatal("clone not done when original is")
	}
	a, b := st.Finish(), clone.Finish()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("finished results differ:\noriginal %+v\nclone    %+v", a, b)
	}
}

// TestCloneMatchesFreshWindow pins the fork acceptance contract:
// under the paper-faithful (zero) transition model, a clone taken at
// slot k and driven to exhaustion is bit-exact with a fresh windowed
// run over [k, end) seeded with the carried active-server count.
func TestCloneMatchesFreshWindow(t *testing.T) {
	tr := testTrace(t, 40)
	ps := oracle(t, tr)
	cfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)

	st, err := NewStepper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const fork = 17
	var carried int
	for i := 0; i < fork; i++ {
		slot, err := st.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		carried = slot.ActiveServers
	}
	clone := st.Clone(&alloc.EPACT{Model: power.NTCServer()})

	wcfg := testConfig(t, tr, &alloc.EPACT{Model: power.NTCServer()}, ps)
	wcfg.StartSlot = fork
	wcfg.InitialActiveServers = carried
	fresh, err := Run(wcfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; !clone.Done(); i++ {
		got, err := clone.Step()
		if err != nil {
			t.Fatal(err)
		}
		if got != fresh.Slots[i] {
			t.Fatalf("fork slot %d differs:\nfresh window %+v\nclone        %+v", got.Slot, fresh.Slots[i], got)
		}
	}
}
