// Package dcsim is the data-center simulator of the paper's
// evaluation (Section VI-C): 600 NTC servers hosting the traced VMs,
// re-allocated every one-hour time slot from ARIMA predictions, with
// a shared online DVFS governor that sets each server's frequency per
// 5-minute sample from the real utilisation, SLA-violation accounting
// (overutilised servers), and energy integration over the server
// power model.
//
// The simulator is agnostic to where its trace came from: any
// trace.Trace on the 5-minute tick grid replays identically, whether
// synthesised or ingested from a file backend. Config.TraceLabel
// carries the ingestion provenance into Result.Trace so downstream
// reports can attribute numbers to their trace source.
package dcsim

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/forecast"
	"repro/internal/trace"
)

// PredictionSet holds forecasted per-VM day-ahead utilisation covering
// the evaluation period, aligned so index 0 is the first evaluated
// sample. Computing it once and sharing it across policy runs mirrors
// the paper's methodology (all policies see the same predictions) and
// makes A/B energy comparisons free of prediction noise.
type PredictionSet struct {
	// Predictor names the source of the forecasts.
	Predictor string

	// CPU[vm][i] and Mem[vm][i] are predicted core-points /
	// container-points for evaluated sample i.
	CPU, Mem [][]float64
}

// Predict builds the prediction set: for every evaluation day it feeds
// each VM's previous historyDays of samples to the predictor and
// forecasts the next day, exactly as the paper does with ARIMA on the
// Google traces ("ARIMA considers the CPU and memory utilization from
// the previous week and forecasts the next-day traces per VM").
//
// A nil predictor yields oracle predictions (the actual traces),
// isolating allocation quality from forecast quality in ablations.
// VM fits run in parallel across the available CPUs.
func Predict(tr *trace.Trace, pred forecast.Predictor, historyDays, evalDays int) (*PredictionSet, error) {
	if historyDays <= 0 || evalDays <= 0 {
		return nil, fmt.Errorf("dcsim: historyDays (%d) and evalDays (%d) must be positive", historyDays, evalDays)
	}
	totalDays := tr.Samples() / trace.SamplesPerDay
	if historyDays+evalDays > totalDays {
		return nil, fmt.Errorf("dcsim: trace has %d days, need %d history + %d eval",
			totalDays, historyDays, evalDays)
	}

	nVMs := len(tr.VMs)
	evalSamples := evalDays * trace.SamplesPerDay
	ps := &PredictionSet{
		Predictor: "oracle",
		CPU:       make([][]float64, nVMs),
		Mem:       make([][]float64, nVMs),
	}
	evalStart := historyDays * trace.SamplesPerDay

	if pred == nil {
		for v, vm := range tr.VMs {
			ps.CPU[v] = append([]float64(nil), vm.CPU[evalStart:evalStart+evalSamples]...)
			ps.Mem[v] = append([]float64(nil), vm.Mem[evalStart:evalStart+evalSamples]...)
		}
		return ps, nil
	}
	ps.Predictor = pred.Name()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for v := range tr.VMs {
		wg.Add(1)
		sem <- struct{}{}
		go func(v int) {
			defer wg.Done()
			defer func() { <-sem }()
			cpu, mem, err := predictVM(tr.VMs[v], pred, historyDays, evalDays)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dcsim: VM %d: %w", v, err)
				}
				mu.Unlock()
				return
			}
			ps.CPU[v] = cpu
			ps.Mem[v] = mem
		}(v)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ps, nil
}

// predictVM forecasts one VM's evaluation period day by day with a
// rolling history window.
func predictVM(vm *trace.VM, pred forecast.Predictor, historyDays, evalDays int) (cpu, mem []float64, err error) {
	day := trace.SamplesPerDay
	for d := 0; d < evalDays; d++ {
		histEnd := (historyDays + d) * day
		histStart := histEnd - historyDays*day
		cpuDay, err := pred.Forecast(vm.CPU[histStart:histEnd], day)
		if err != nil {
			return nil, nil, fmt.Errorf("cpu day %d: %w", d, err)
		}
		memDay, err := pred.Forecast(vm.Mem[histStart:histEnd], day)
		if err != nil {
			return nil, nil, fmt.Errorf("mem day %d: %w", d, err)
		}
		cpu = append(cpu, cpuDay...)
		mem = append(mem, memDay...)
	}
	return cpu, mem, nil
}
