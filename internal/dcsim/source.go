package dcsim

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/forecast"
	"repro/internal/trace"
)

// SlotSource gates an incremental replay on data availability: before
// simulating evaluation slot s, a Stepper with a configured source
// asks SlotReady(s) and refuses — with ErrAwaitingSamples, without
// advancing or poisoning itself — while the answer is false. A replay
// over a pre-ingested trace has no source (nil) and is never gated.
//
// Implementations must be safe for concurrent use: the live service
// ingests samples from one goroutine while stepping from another.
type SlotSource interface {
	// SlotReady reports whether evaluation slot s (0-based within the
	// evaluation period) can be simulated — all of its actual samples
	// and the prediction samples the allocator needs are present.
	SlotReady(s int) bool
}

// ErrAwaitingSamples is returned (wrapped) by Stepper.Step when the
// configured SlotSource has not released the next slot yet. It is the
// one Step error that does NOT poison the stepper: nothing advanced,
// and the same slot can be stepped once its samples arrive.
var ErrAwaitingSamples = errors.New("awaiting observed samples")

// ErrObserveOrder is returned (wrapped) by LiveFeed.Observe when the
// offered slot is not the next unobserved one. Samples arrive on the
// wire in order or not at all — the same contract the CSV ingester
// enforces per VM ("sample out of order").
var ErrObserveOrder = errors.New("slot out of order")

// LiveFeed adapts live observed utilisation samples into the inputs a
// Stepper consumes: a private full-length trace whose history window
// is copied from a base trace and whose evaluation region fills in
// slot by slot through Observe, plus a private prediction set that is
// kept bit-exact with what batch Predict would compute over the fully
// ingested trace. It is the SlotSource for its own stepper: a slot is
// ready once its 12 actual samples (and the prediction day they
// complete) have been ingested.
//
// Prediction bookkeeping mirrors Predict's rolling day-by-day
// windows: day 0 is forecast at construction (it needs history only);
// day d is forecast the moment the last sample of day d-1 arrives,
// over the identical history window batch Predict uses — Forecast is
// pure, so the incrementally built rows are bit-identical to the
// batch set. A nil predictor is the oracle: observed samples are
// copied straight into the prediction rows.
type LiveFeed struct {
	mu sync.Mutex

	tr   *trace.Trace
	ps   *PredictionSet
	pred forecast.Predictor

	historyDays, evalDays int
	evalSlots             int
	ingested              int // evaluation slots observed so far
	predDays              int // evaluation days with final prediction rows
}

// NewLiveFeed builds a feed for historyDays+evalDays of the base
// trace's VM population: the history window (VM identity, classes and
// the first historyDays of samples) is copied out of base; the
// evaluation region starts empty and fills through Observe. The base
// trace must cover the history window and is never retained.
func NewLiveFeed(base *trace.Trace, pred forecast.Predictor, historyDays, evalDays int) (*LiveFeed, error) {
	if historyDays <= 0 || evalDays <= 0 {
		return nil, fmt.Errorf("dcsim: historyDays (%d) and evalDays (%d) must be positive", historyDays, evalDays)
	}
	if base == nil || len(base.VMs) == 0 {
		return nil, errors.New("dcsim: live feed needs a base trace with at least one VM")
	}
	hist := historyDays * trace.SamplesPerDay
	if base.Samples() < hist {
		return nil, fmt.Errorf("dcsim: base trace has %d samples, live feed needs %d of history", base.Samples(), hist)
	}
	total := (historyDays + evalDays) * trace.SamplesPerDay
	f := &LiveFeed{
		tr:          &trace.Trace{Interval: base.Interval, VMs: make([]*trace.VM, len(base.VMs))},
		pred:        pred,
		historyDays: historyDays,
		evalDays:    evalDays,
		evalSlots:   evalDays * trace.SamplesPerDay / trace.SamplesPerSlot,
	}
	for v, vm := range base.VMs {
		nv := *vm
		nv.CPU = make([]float64, total)
		nv.Mem = make([]float64, total)
		copy(nv.CPU, vm.CPU[:hist])
		copy(nv.Mem, vm.Mem[:hist])
		f.tr.VMs[v] = &nv
	}
	evalSamples := evalDays * trace.SamplesPerDay
	f.ps = &PredictionSet{
		Predictor: "oracle",
		CPU:       make([][]float64, len(base.VMs)),
		Mem:       make([][]float64, len(base.VMs)),
	}
	for v := range f.ps.CPU {
		f.ps.CPU[v] = make([]float64, evalSamples)
		f.ps.Mem[v] = make([]float64, evalSamples)
	}
	if pred != nil {
		f.ps.Predictor = pred.Name()
		// Day 0 needs history only — forecast it now, exactly the
		// first window batch Predict uses.
		if err := f.forecastDay(0); err != nil {
			return nil, err
		}
		f.predDays = 1
	}
	return f, nil
}

// Trace returns the feed's private trace. It is owned by the feed —
// Observe writes its evaluation region — and must only be consumed
// through a Stepper gated by the feed itself.
func (f *LiveFeed) Trace() *trace.Trace { return f.tr }

// Predictions returns the feed's private prediction set, under the
// same ownership rule as Trace.
func (f *LiveFeed) Predictions() *PredictionSet { return f.ps }

// Slots returns the evaluation horizon in slots.
func (f *LiveFeed) Slots() int { return f.evalSlots }

// Ingested returns how many evaluation slots have been observed.
func (f *LiveFeed) Ingested() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ingested
}

// SlotReady implements SlotSource: slot s is simulatable once it has
// been observed (prediction days complete strictly before the actuals
// that finish them, so no separate prediction check is needed).
func (f *LiveFeed) SlotReady(s int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return s < f.ingested
}

// Observe ingests evaluation slot slot: cpu[v] and mem[v] are VM v's
// 12 five-minute samples in percent. Validation mirrors the CSV
// ingester: slots arrive strictly in order (ErrObserveOrder
// otherwise), every VM reports exactly trace.SamplesPerSlot samples,
// and values lie in [0, 100]. On success the slot becomes SlotReady
// and any prediction day it completes is forecast; on error nothing
// is ingested.
func (f *LiveFeed) Observe(slot int, cpu, mem [][]float64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if slot >= f.evalSlots {
		return fmt.Errorf("dcsim: observed slot %d outside the %d-slot evaluation horizon", slot, f.evalSlots)
	}
	if slot != f.ingested {
		return fmt.Errorf("dcsim: %w: observed slot %d, want %d", ErrObserveOrder, slot, f.ingested)
	}
	if len(cpu) != len(f.tr.VMs) || len(mem) != len(f.tr.VMs) {
		return fmt.Errorf("dcsim: observed slot covers %d cpu / %d mem VMs, trace has %d",
			len(cpu), len(mem), len(f.tr.VMs))
	}
	for v := range cpu {
		if len(cpu[v]) != trace.SamplesPerSlot || len(mem[v]) != trace.SamplesPerSlot {
			return fmt.Errorf("dcsim: VM %d reports %d cpu / %d mem samples, want %d per slot",
				v, len(cpu[v]), len(mem[v]), trace.SamplesPerSlot)
		}
		for i := 0; i < trace.SamplesPerSlot; i++ {
			// The negated comparison also rejects NaN.
			if !(cpu[v][i] >= 0 && cpu[v][i] <= 100) {
				return fmt.Errorf("dcsim: VM %d cpu sample %d out of range [0,100]: %v", v, i, cpu[v][i])
			}
			if !(mem[v][i] >= 0 && mem[v][i] <= 100) {
				return fmt.Errorf("dcsim: VM %d mem sample %d out of range [0,100]: %v", v, i, mem[v][i])
			}
		}
	}

	abs := f.historyDays*trace.SamplesPerDay + slot*trace.SamplesPerSlot
	lo := slot * trace.SamplesPerSlot
	for v := range cpu {
		copy(f.tr.VMs[v].CPU[abs:abs+trace.SamplesPerSlot], cpu[v])
		copy(f.tr.VMs[v].Mem[abs:abs+trace.SamplesPerSlot], mem[v])
		if f.pred == nil {
			// Oracle predictions are the actuals.
			copy(f.ps.CPU[v][lo:lo+trace.SamplesPerSlot], cpu[v])
			copy(f.ps.Mem[v][lo:lo+trace.SamplesPerSlot], mem[v])
		}
	}

	// Commit the slot only after every newly due prediction day is
	// forecast, so a Forecast failure leaves the slot un-ingested (and
	// the stepper gated) instead of releasing it with zero predictions.
	next := f.ingested + 1
	if f.pred != nil {
		for f.predDays < f.evalDays && next*trace.SamplesPerSlot >= f.predDays*trace.SamplesPerDay {
			if err := f.forecastDay(f.predDays); err != nil {
				return err
			}
			f.predDays++
		}
	}
	f.ingested = next
	return nil
}

// forecastDay fills prediction day d from the same rolling history
// window batch Predict uses. Caller holds mu (or is the constructor).
func (f *LiveFeed) forecastDay(d int) error {
	day := trace.SamplesPerDay
	histEnd := (f.historyDays + d) * day
	histStart := histEnd - f.historyDays*day
	for v, vm := range f.tr.VMs {
		cpuDay, err := f.pred.Forecast(vm.CPU[histStart:histEnd], day)
		if err != nil {
			return fmt.Errorf("dcsim: VM %d: cpu day %d: %w", v, d, err)
		}
		memDay, err := f.pred.Forecast(vm.Mem[histStart:histEnd], day)
		if err != nil {
			return fmt.Errorf("dcsim: VM %d: mem day %d: %w", v, d, err)
		}
		copy(f.ps.CPU[v][d*day:(d+1)*day], cpuDay)
		copy(f.ps.Mem[v][d*day:(d+1)*day], memDay)
	}
	return nil
}
