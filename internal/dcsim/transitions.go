package dcsim

import (
	"repro/internal/alloc"
	"repro/internal/units"
)

// TransitionModel prices the state changes a per-slot re-allocation
// causes: servers powering on or off between slots and VM migrations.
// The paper's energy accounting ignores both (its related work —
// Ruan et al., Beloglazov et al. — optimises for them), so this is an
// extension knob: with the default zero model the simulator matches
// the paper; with realistic costs the EPACT-vs-consolidation gap can
// be re-examined under churn (an ablation in the experiments package).
type TransitionModel struct {
	// ServerOnEnergy is consumed every time an off server powers on
	// (boot + fan spin-up). A typical blade costs ~30 s at near-peak
	// power: ≈5 kJ.
	ServerOnEnergy units.Energy

	// ServerOffEnergy is the cost of an orderly shutdown.
	ServerOffEnergy units.Energy

	// MigrationEnergyPerByte prices the memory copy of a live
	// migration across the network (NIC + switch + source/dest CPU);
	// ≈0.5-1 nJ/B end-to-end on 10 GbE class fabrics.
	MigrationEnergyPerByte units.Energy
}

// ZeroTransitions returns the paper-faithful model (no costs).
func ZeroTransitions() TransitionModel { return TransitionModel{} }

// DefaultTransitions returns a realistic cost model for the extension
// experiments.
func DefaultTransitions() TransitionModel {
	return TransitionModel{
		ServerOnEnergy:         5 * units.Kilojoule,
		ServerOffEnergy:        1 * units.Kilojoule,
		MigrationEnergyPerByte: units.Energy(0.8e-9),
	}
}

// slotTransitionEnergy prices the change from the previous slot's
// assignment to the next one. initialActive seeds the first slot
// (prev == nil): the run starts with that many servers already on, so
// only the delta is billed — 0 reproduces the historical cold start,
// where every first-slot server pays the power-on cost. Migrations
// are never counted across a nil prev (the VM universe may differ).
func (m TransitionModel) slotTransitionEnergy(prev, next *alloc.Assignment, memBytes []float64, initialActive int) (units.Energy, alloc.MigrationStats) {
	var stats alloc.MigrationStats
	if prev == nil {
		on := 0
		if next != nil {
			on = next.ActiveServers()
		}
		var e float64
		if on > initialActive {
			e = float64(m.ServerOnEnergy) * float64(on-initialActive)
		} else if initialActive > on {
			e = float64(m.ServerOffEnergy) * float64(initialActive-on)
		}
		return units.Energy(e), stats
	}
	prevActive := prev.ActiveServers()
	nextActive := next.ActiveServers()
	var e float64
	if nextActive > prevActive {
		e += float64(m.ServerOnEnergy) * float64(nextActive-prevActive)
	} else if prevActive > nextActive {
		e += float64(m.ServerOffEnergy) * float64(prevActive-nextActive)
	}
	stats = alloc.CompareAssignments(prev, next, memBytes)
	e += float64(m.MigrationEnergyPerByte) * stats.BytesMoved
	return units.Energy(e), stats
}
