package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// sweepArgs is the acceptance grid: 6 policies × 2 transition models
// × 2 pool sizes = 24 scenarios at a test-friendly scale.
func sweepArgs(extra ...string) []string {
	args := []string{
		"-policies", "EPACT,COAT,COAT-OPT,FFD,Verma-binary,load-balance",
		"-vms", "40",
		"-max-servers", "40,20",
		"-transitions", "none,default",
		"-predictors", "oracle",
		"-days", "1",
	}
	return append(args, extra...)
}

// writeTestTrace writes a deterministic generated trace to dir in the
// native CSV format and returns its path.
func writeTestTrace(t *testing.T, dir string, seed int64, vms, days int) string {
	t.Helper()
	cfg := trace.DefaultConfig(seed)
	cfg.VMs = vms
	cfg.Days = days
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWorkerCountDoesNotChangeOutput is the CLI-level determinism
// acceptance check: the same 24-scenario grid through -workers=1 and
// -workers=8 must produce byte-identical CSV.
func TestWorkerCountDoesNotChangeOutput(t *testing.T) {
	var outputs []string
	for _, workers := range []string{"1", "8"} {
		var stdout, stderr bytes.Buffer
		if err := run(sweepArgs("-workers", workers, "-quiet"), &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, stderr.String())
		}
		if n := strings.Count(stdout.String(), "\n"); n != 25 {
			t.Fatalf("workers=%s: %d CSV lines, want 25 (header + 24 scenarios)", workers, n)
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("-workers=1 and -workers=8 disagree:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

// TestCSVTraceAxisGolden pins the CSV-backed trace axis: the same
// trace file through 1, 4 and 8 workers must produce one
// byte-identical table whose rows match the golden values below.
// A drift here means the ingestion pipeline (CSV decode → fit →
// predict → simulate) changed, not just the generator.
func TestCSVTraceAxisGolden(t *testing.T) {
	path := writeTestTrace(t, t.TempDir(), 5, 24, 2)
	args := []string{
		"-policies", "EPACT,COAT",
		"-vms", "24",
		"-max-servers", "24",
		"-days", "1",
		"-history", "1",
		"-predictors", "oracle",
		"-trace", "csv:" + path,
		"-quiet",
	}

	var outputs []string
	for _, workers := range []string{"1", "4", "8"} {
		var stdout, stderr bytes.Buffer
		if err := run(append(args, "-workers", workers), &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, stderr.String())
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("worker counts disagree on a CSV-backed trace:\n%s\nvs\n%s\nvs\n%s",
			outputs[0], outputs[1], outputs[2])
	}

	lines := strings.Split(strings.TrimSpace(outputs[0]), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d CSV lines, want 3 (header + EPACT + COAT):\n%s", len(lines), outputs[0])
	}
	// Golden rows, pinned (trace column carries the temp path, so
	// compare around it). The metric columns are unchanged since the
	// topology axis landed — the default "single" topology reproduces
	// the plain simulation bit-for-bit; only the provenance columns
	// (topology, dc_count, ep_score, per_dc with the axis, then
	// rebalance, cross_dc_migrations, latency_weighted_viol under
	// schema v3, then power_model, operational_gco2, embodied_gco2
	// under schema v4) were appended. The nonzero operational gCO2
	// is the default grid intensity (400 gCO2eq/kWh) pricing the same
	// facility energy; embodied stays zero until a fleet declares
	// manufacturing carbon.
	golden := []struct{ prefix, suffix string }{
		{"EPACT,oracle,none,csv:", ",24,24,1,2018,0,0,0,24,5.525656,0.000000,0,1.041667,2,0,1.783333,single,1,0.482606,,off,0,0.000000,ntc,613.961726,0.000000,"},
		{"COAT,oracle,none,csv:", ",24,24,1,2018,0,0,0,24,11.471419,0.000000,0,1.000000,1,0,3.100000,single,1,0.231086,,off,0,0.000000,ntc,1274.602107,0.000000,"},
	}
	for i, want := range golden {
		row := lines[i+1]
		if !strings.HasPrefix(row, want.prefix) {
			t.Errorf("row %d = %q, want prefix %q", i+1, row, want.prefix)
		}
		if !strings.HasSuffix(row, want.suffix) {
			t.Errorf("row %d = %q, want suffix %q", i+1, row, want.suffix)
		}
	}
}

// TestFleetSweepGoldenDeterministicAndCached is the multi-datacenter
// acceptance check: a fleet sweep over the 3-heterogeneous-DC triad
// under all three dispatch policies runs via -topology, is
// byte-deterministic across worker counts, answers a warm re-run
// entirely from the cache (0 executions), and matches the golden rows
// below. The rows pin the fleet-scale headline: consolidating the
// fleet onto its most energy-proportional site (greedy-proportional)
// beats uniform spreading, while chasing latency (follow-the-load)
// pushes load onto the conventional edge site and costs the most.
func TestFleetSweepGoldenDeterministicAndCached(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{
		"-policies", "EPACT,COAT",
		"-vms", "48",
		"-max-servers", "48",
		"-days", "1",
		"-predictors", "oracle",
		"-topology", "uniform@triad,greedy-proportional@triad,follow-the-load@triad",
		"-cache", "rw",
		"-cache-dir", cacheDir,
	}

	var outputs []string
	var lastErr string
	for _, workers := range []string{"1", "4", "8"} {
		var stdout, stderr bytes.Buffer
		if err := run(append(args, "-workers", workers), &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, stderr.String())
		}
		outputs = append(outputs, stdout.String())
		lastErr = stderr.String()
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("worker counts disagree on a fleet sweep:\n%s\nvs\n%s\nvs\n%s",
			outputs[0], outputs[1], outputs[2])
	}
	// The second and third runs were warm: every scenario came from
	// the store, nothing executed, nothing was ingested.
	if !strings.Contains(lastErr, "cache: 6 hits, 0 misses, 0 rows written") {
		t.Errorf("warm fleet re-run executed scenarios:\n%s", lastErr)
	}
	if !strings.Contains(lastErr, "0 traces built for 0 requests") {
		t.Errorf("warm fleet re-run ingested inputs:\n%s", lastErr)
	}

	golden := []string{
		"policy,predictor,transitions,trace,vms,max_servers,eval_days,seed,static_power_w,churn_fraction,churn_affected_vms,slots,total_energy_mj,transition_mj,violations,mean_active,peak_active,migrations,mean_planned_freq_ghz,topology,dc_count,ep_score,per_dc,rebalance,cross_dc_migrations,latency_weighted_viol,power_model,operational_gco2,embodied_gco2,error",
		"EPACT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,47.798861,0.000000,0,5.250000,7,0,1.712240,uniform@triad,3,0.409038,core=12.056;metro=7.699;edge=28.043,off,0,0.000000,ntc,5310.984591,0.000000,",
		"COAT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,68.204271,0.000000,0,4.458333,5,0,2.968750,uniform@triad,3,0.347015,core=23.830;metro=15.445;edge=28.929,off,0,0.000000,ntc,7578.252361,0.000000,",
		"EPACT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,22.115386,0.000000,0,3.708333,5,0,1.887500,greedy-proportional@triad,3,0.295219,core=22.115;metro=0.000;edge=0.000,off,0,0.000000,ntc,2457.265127,0.000000,",
		"COAT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,38.874682,0.000000,0,2.541667,3,0,3.100000,greedy-proportional@triad,3,0.275486,core=38.875;metro=0.000;edge=0.000,off,0,0.000000,ntc,4319.409158,0.000000,",
		"EPACT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,79.073546,0.000000,0,6.166667,7,0,1.820660,follow-the-load@triad,3,0.321275,core=4.377;metro=7.586;edge=67.110,off,0,0.000000,ntc,8785.949585,0.000000,",
		"COAT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,93.818028,0.000000,0,5.666667,6,0,2.706250,follow-the-load@triad,3,0.203881,core=10.566;metro=15.361;edge=67.891,off,0,0.000000,ntc,10424.225296,0.000000,",
	}
	lines := strings.Split(strings.TrimSpace(outputs[0]), "\n")
	if len(lines) != len(golden) {
		t.Fatalf("got %d CSV lines, want %d:\n%s", len(lines), len(golden), outputs[0])
	}
	for i, want := range golden {
		if lines[i] != want {
			t.Errorf("line %d drifted:\ngot  %s\nwant %s", i, lines[i], want)
		}
	}
}

// TestRebalanceSweepGoldenDeterministicAndCached is the cross-DC
// rebalancing acceptance check: the rebalance axis runs via
// -rebalance, is byte-deterministic across worker counts, answers a
// warm re-run entirely from the cache, reuses the same store through
// `-dist local:4` without leasing a unit, and matches the golden rows
// below. The rows pin the tentpole headline: a triad dispatched
// uniform but epoch-rebalanced onto the energy-proportional core
// (greedy-proportional every 4 slots) roughly halves fleet energy vs
// the static dispatch it started from, paying 23 cross-DC migrations
// whose downtime surfaces as violation-samples — latency-weighted 4×
// at the 40 ms core site.
func TestRebalanceSweepGoldenDeterministicAndCached(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{
		"-policies", "EPACT,COAT",
		"-vms", "48",
		"-max-servers", "48",
		"-days", "1",
		"-predictors", "oracle",
		"-topology", "uniform@triad",
		"-rebalance", "off,epoch:4@greedy-proportional",
		"-cache", "rw",
		"-cache-dir", cacheDir,
	}

	var outputs []string
	var lastErr string
	for _, workers := range []string{"1", "4", "8"} {
		var stdout, stderr bytes.Buffer
		if err := run(append(args, "-workers", workers), &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, stderr.String())
		}
		outputs = append(outputs, stdout.String())
		lastErr = stderr.String()
	}
	if outputs[0] != outputs[1] || outputs[0] != outputs[2] {
		t.Fatalf("worker counts disagree on a rebalance sweep:\n%s\nvs\n%s\nvs\n%s",
			outputs[0], outputs[1], outputs[2])
	}
	if !strings.Contains(lastErr, "cache: 4 hits, 0 misses, 0 rows written") {
		t.Errorf("warm rebalance re-run executed scenarios:\n%s", lastErr)
	}
	if !strings.Contains(lastErr, "0 traces built for 0 requests") {
		t.Errorf("warm rebalance re-run ingested inputs:\n%s", lastErr)
	}

	golden := []string{
		"policy,predictor,transitions,trace,vms,max_servers,eval_days,seed,static_power_w,churn_fraction,churn_affected_vms,slots,total_energy_mj,transition_mj,violations,mean_active,peak_active,migrations,mean_planned_freq_ghz,topology,dc_count,ep_score,per_dc,rebalance,cross_dc_migrations,latency_weighted_viol,power_model,operational_gco2,embodied_gco2,error",
		"EPACT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,47.798861,0.000000,0,5.250000,7,0,1.712240,uniform@triad,3,0.409038,core=12.056;metro=7.699;edge=28.043,off,0,0.000000,ntc,5310.984591,0.000000,",
		"COAT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,68.204271,0.000000,0,4.458333,5,0,2.968750,uniform@triad,3,0.347015,core=23.830;metro=15.445;edge=28.929,off,0,0.000000,ntc,7578.252361,0.000000,",
		"EPACT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,24.811255,0.000000,23,3.833333,5,0,1.852431,uniform@triad,3,0.486770,core=20.635;metro=1.172;edge=3.004,epoch:4@greedy-proportional,23,92.000000,ntc,2756.806163,0.000000,",
		"COAT,oracle,none,synthetic,48,48,1,2018,0,0,0,24,42.170355,0.000000,23,2.750000,4,0,3.078125,uniform@triad,3,0.441364,core=36.566;metro=2.434;edge=3.169,epoch:4@greedy-proportional,23,92.000000,ntc,4685.595047,0.000000,",
	}
	lines := strings.Split(strings.TrimSpace(outputs[0]), "\n")
	if len(lines) != len(golden) {
		t.Fatalf("got %d CSV lines, want %d:\n%s", len(lines), len(golden), outputs[0])
	}
	for i, want := range golden {
		if lines[i] != want {
			t.Errorf("line %d drifted:\ngot  %s\nwant %s", i, lines[i], want)
		}
	}

	// The distributed path reuses the same store: a warm `-dist
	// local:4` run leases nothing, executes nothing, and emits the
	// exact bytes.
	var dout, derr bytes.Buffer
	distArgs := append([]string{}, args...)
	if err := run(append(distArgs, "-dist", "local:4"), &dout, &derr); err != nil {
		t.Fatalf("dist run: %v\n%s", err, derr.String())
	}
	if dout.String() != outputs[0] {
		t.Errorf("-dist local:4 rebalance CSV differs from the engine:\n%s\nvs\n%s", dout.String(), outputs[0])
	}
	if !strings.Contains(derr.String(), "dist: 4 units (4 cache hits), 0 leases to 0 workers") {
		t.Errorf("warm dist rebalance run leased work:\n%s", derr.String())
	}
}

// TestCacheRerunIsAllHitsAndByteIdentical is the CLI half of the
// incremental-cache acceptance criterion: the second -cache=rw run of
// an identical grid executes nothing (all hits, zero trace builds)
// and its CSV/JSON bytes match the first run's.
func TestCacheRerunIsAllHitsAndByteIdentical(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeTestTrace(t, dir, 9, 30, 2)
	cacheDir := filepath.Join(dir, "cache")
	jsonA, jsonB := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")

	args := func(jsonOut string) []string {
		return []string{
			"-policies", "EPACT,COAT",
			"-vms", "30",
			"-max-servers", "30",
			"-days", "1",
			"-history", "1",
			"-predictors", "oracle",
			"-trace", "csv:" + tracePath,
			"-cache", "rw",
			"-cache-dir", cacheDir,
			"-json", jsonOut,
		}
	}

	var out1, err1 bytes.Buffer
	if err := run(args(jsonA), &out1, &err1); err != nil {
		t.Fatalf("%v\n%s", err, err1.String())
	}
	if !strings.Contains(err1.String(), "cache: 0 hits, 2 misses, 2 rows written") {
		t.Errorf("cold-run summary missing cache stats:\n%s", err1.String())
	}

	var out2, err2 bytes.Buffer
	if err := run(args(jsonB), &out2, &err2); err != nil {
		t.Fatalf("%v\n%s", err, err2.String())
	}
	// All hits, nothing executed: no trace was ingested, no
	// prediction set was built.
	if !strings.Contains(err2.String(), "cache: 2 hits, 0 misses, 0 rows written") {
		t.Errorf("warm-run summary shows executions:\n%s", err2.String())
	}
	if !strings.Contains(err2.String(), "0 traces built for 0 requests") {
		t.Errorf("warm run ingested inputs:\n%s", err2.String())
	}
	if out1.String() != out2.String() {
		t.Errorf("cached CSV differs:\n%s\nvs\n%s", out1.String(), out2.String())
	}
	a, err := os.ReadFile(jsonA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(jsonB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cached JSON differs from uncached run")
	}
}

func TestGridFileAndOutputFiles(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	csvPath := filepath.Join(dir, "out.csv")
	jsonPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(gridPath, []byte(`{
		"policies": ["EPACT", "COAT"],
		"vms": [40],
		"max_servers": [40],
		"eval_days": 1,
		"seeds": [2018],
		"predictors": ["oracle"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := run([]string{"-grid", gridPath, "-csv", csvPath, "-json", jsonPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(csv, []byte("\n")); n != 3 {
		t.Errorf("CSV has %d lines, want 3 (header + 2 scenarios):\n%s", n, csv)
	}
	if !bytes.HasPrefix(csv, []byte("policy,predictor,")) {
		t.Errorf("CSV missing header:\n%s", csv)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_energy_mj"`, `"EPACT"`, `"trace": "synthetic"`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Errorf("JSON missing %s", want)
		}
	}
	// Execution metadata stays out of the JSON (the byte-identity
	// contract across worker counts and cache states).
	if bytes.Contains(js, []byte(`"trace_builds"`)) {
		t.Error("JSON leaks loader statistics")
	}
	if !strings.Contains(stderr.String(), "2 scenarios") {
		t.Errorf("summary missing scenario count:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "1 traces built for 2 requests") {
		t.Errorf("summary missing loader stats:\n%s", stderr.String())
	}
}

// TestDistLocalDeterminismAndWarmCache is the distributed
// acceptance criterion at the CLI level: the same grid through the
// plain engine and through `-dist local:4` (coordinator + 4 workers
// over the in-process transport) must produce byte-identical CSV, and
// a warm re-run over the shared result store must lease nothing and
// execute zero scenarios.
func TestDistLocalDeterminismAndWarmCache(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")

	var engine, engineErr bytes.Buffer
	if err := run(sweepArgs("-workers", "2", "-quiet"), &engine, &engineErr); err != nil {
		t.Fatalf("engine run: %v\n%s", err, engineErr.String())
	}

	var cold, coldErr bytes.Buffer
	if err := run(sweepArgs("-dist", "local:4", "-cache", "rw", "-cache-dir", cacheDir), &cold, &coldErr); err != nil {
		t.Fatalf("dist run: %v\n%s", err, coldErr.String())
	}
	if cold.String() != engine.String() {
		t.Errorf("-dist local:4 CSV differs from the engine:\n%s\nvs\n%s", cold.String(), engine.String())
	}
	if !strings.Contains(coldErr.String(), "dist: 24 units (0 cache hits)") {
		t.Errorf("cold dist summary missing stats:\n%s", coldErr.String())
	}

	var warm, warmErr bytes.Buffer
	if err := run(sweepArgs("-dist", "local:4", "-cache", "rw", "-cache-dir", cacheDir), &warm, &warmErr); err != nil {
		t.Fatalf("warm dist run: %v\n%s", err, warmErr.String())
	}
	if warm.String() != engine.String() {
		t.Errorf("warm -dist CSV differs from the engine:\n%s", warm.String())
	}
	stderr := warmErr.String()
	if !strings.Contains(stderr, "dist: 24 units (24 cache hits), 0 leases to 0 workers") {
		t.Errorf("warm cluster leased work:\n%s", stderr)
	}
	if !strings.Contains(stderr, "cache: 24 hits, 0 misses, 0 rows written") {
		t.Errorf("warm cluster summary shows executions:\n%s", stderr)
	}
	if !strings.Contains(stderr, "0 traces built for 0 requests") {
		t.Errorf("warm cluster ingested inputs:\n%s", stderr)
	}
}

// syncBuffer lets the serve goroutine and the test poll stderr
// concurrently (the test scrapes the coordinator's bound address).
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeWorkerEndToEndDeterminism runs the real two-process topology inside
// one test binary: `-serve 127.0.0.1:0` as the coordinator and two
// `-worker` invocations against the scraped address. The coordinator's
// CSV must match the plain engine's.
func TestServeWorkerEndToEndDeterminism(t *testing.T) {
	var engine, engineErr bytes.Buffer
	if err := run(sweepArgs("-workers", "2", "-quiet"), &engine, &engineErr); err != nil {
		t.Fatalf("engine run: %v\n%s", err, engineErr.String())
	}

	csvPath := filepath.Join(t.TempDir(), "out.csv")
	serveErrs := &syncBuffer{}
	serveDone := make(chan error, 1)
	go func() {
		var stdout bytes.Buffer
		serveDone <- run(sweepArgs("-serve", "127.0.0.1:0", "-csv", csvPath), &stdout, serveErrs)
	}()

	// Scrape the bound address from the coordinator's stderr.
	addrRe := regexp.MustCompile(`coordinator: listening on (\S+)`)
	var addr string
	for deadline := time.Now().Add(10 * time.Second); addr == ""; {
		if m := addrRe.FindStringSubmatch(serveErrs.String()); m != nil {
			addr = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never reported its address:\n%s", serveErrs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	var wg sync.WaitGroup
	workerErrs := make([]error, 2)
	for i := range workerErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var stdout, stderr bytes.Buffer
			workerErrs[i] = run([]string{"-worker", addr}, &stdout, &stderr)
		}(i)
	}
	wg.Wait()
	for i, err := range workerErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("coordinator: %v\n%s", err, serveErrs.String())
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(csv) != engine.String() {
		t.Errorf("-serve/-worker CSV differs from the engine:\n%s\nvs\n%s", csv, engine.String())
	}
	if !strings.Contains(serveErrs.String(), "dist: 24 units") {
		t.Errorf("coordinator summary missing dist stats:\n%s", serveErrs.String())
	}
}

// TestResumeCLIMidGridRoundTrip is the CLI half of the crash-resume
// acceptance check: a -dist run journals every completion to
// -checkpoint-dir; the test amputates the journal to 10 of its 24 rows
// (exactly the on-disk state a coordinator killed mid-grid leaves
// behind) and restarts with -resume. The resumed run restores those
// rows without re-executing them, runs only the missing 14, and emits
// byte-identical CSV.
func TestResumeCLIMidGridRoundTrip(t *testing.T) {
	ckDir := filepath.Join(t.TempDir(), "ck")

	var full, fullErr bytes.Buffer
	if err := run(sweepArgs("-dist", "local:2", "-checkpoint-dir", ckDir), &full, &fullErr); err != nil {
		t.Fatalf("checkpointed run: %v\n%s", err, fullErr.String())
	}
	if !strings.Contains(fullErr.String(), "0 resumed") {
		t.Errorf("cold run claims resumed units:\n%s", fullErr.String())
	}

	journalPath := filepath.Join(ckDir, "journal.json")
	raw, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	var journal map[string]any
	if err := json.Unmarshal(raw, &journal); err != nil {
		t.Fatal(err)
	}
	rows, ok := journal["rows"].([]any)
	if !ok || len(rows) != 24 {
		t.Fatalf("journal holds %d rows, want 24", len(rows))
	}
	journal["rows"] = rows[:10]
	cut, err := json.Marshal(journal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(journalPath, cut, 0o644); err != nil {
		t.Fatal(err)
	}

	var resumed, resumedErr bytes.Buffer
	if err := run([]string{"-resume", ckDir, "-dist", "local:2"}, &resumed, &resumedErr); err != nil {
		t.Fatalf("resumed run: %v\n%s", err, resumedErr.String())
	}
	if resumed.String() != full.String() {
		t.Errorf("resumed CSV differs from the uninterrupted run:\n%s\nvs\n%s", resumed.String(), full.String())
	}
	stderr := resumedErr.String()
	if !strings.Contains(stderr, "resuming: 10 of 24 rows restored from "+ckDir) {
		t.Errorf("missing resume banner:\n%s", stderr)
	}
	if !strings.Contains(stderr, "10 resumed") {
		t.Errorf("dist summary missing the resumed count:\n%s", stderr)
	}

	// The resumed run kept journaling: a second -resume restores all
	// 24 rows and finishes without leasing a single unit.
	var again, againErr bytes.Buffer
	if err := run([]string{"-resume", ckDir, "-dist", "local:2"}, &again, &againErr); err != nil {
		t.Fatalf("re-resumed run: %v\n%s", err, againErr.String())
	}
	if again.String() != full.String() {
		t.Error("re-resumed CSV differs from the uninterrupted run")
	}
	if s := againErr.String(); !strings.Contains(s, "0 leases to 0 workers") || !strings.Contains(s, "24 resumed") {
		t.Errorf("complete journal still leased work:\n%s", s)
	}
}

// TestBadFlagsSurfaceErrors: every unknown axis value must produce a
// clear error and a non-zero exit (run returning an error), never a
// panic or an empty table.
func TestBadFlagsSurfaceErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-policy", []string{"-policies", "nope"}, "unknown policy"},
		{"unknown-predictor", []string{"-predictors", "prophet"}, "unknown predictor"},
		{"unknown-transitions", []string{"-transitions", "expensive"}, "unknown transition model"},
		{"unknown-trace-backend", []string{"-trace", "bogus:x"}, `unknown trace backend "bogus"`},
		{"csv-trace-without-path", []string{"-trace", "csv"}, "needs a file path"},
		{"unknown-topology", []string{"-topology", "bogus"}, `unknown fleet "bogus"`},
		{"unknown-dispatcher", []string{"-topology", "warp@triad"}, `unknown dispatcher "warp"`},
		{"grid-plus-topology-flag", []string{"-grid", "g.json", "-topology", "triad"}, "mutually exclusive"},
		{"unknown-power-model", []string{"-power-model", "sdp"}, `unknown power model "sdp"`},
		{"grid-plus-power-model-flag", []string{"-grid", "g.json", "-power-model", "tdp"}, "mutually exclusive"},
		{"unknown-rebalance", []string{"-rebalance", "hourly"}, "unknown rebalance spec"},
		{"zero-epoch-rebalance", []string{"-rebalance", "epoch:0"}, "positive slot count"},
		{"rebalance-bad-dispatcher", []string{"-rebalance", "epoch:4@warp"}, `unknown dispatcher "warp"`},
		{"grid-plus-rebalance-flag", []string{"-grid", "g.json", "-rebalance", "off"}, "mutually exclusive"},
		{"non-numeric-vms", []string{"-vms", "forty"}, "-vms"},
		{"negative-vms", []string{"-vms", "-3"}, "VMs must be positive"},
		{"churn-out-of-range", []string{"-churn", "1.5"}, "churn fraction"},
		{"missing-grid-file", []string{"-grid", "/does/not/exist.json"}, "no such file"},
		{"grid-plus-axis-flag", []string{"-grid", "g.json", "-policies", "EPACT"}, "mutually exclusive"},
		{"unknown-cache-mode", []string{"-cache", "readwrite"}, "unknown mode"},
		{"cache-without-dir", []string{"-cache", "rw"}, "needs a cache directory"},
		{"stray-args", []string{"extra"}, "unexpected arguments"},
		{"bad-dist-spec", []string{"-dist", "remote:4"}, "unknown spec"},
		{"zero-dist-workers", []string{"-dist", "local:0"}, "positive integer"},
		{"serve-plus-dist", []string{"-serve", ":0", "-dist", "local:2"}, "mutually exclusive"},
		{"worker-plus-serve", []string{"-worker", "x:1", "-serve", ":0"}, "mutually exclusive"},
		{"worker-plus-grid", []string{"-worker", "x:1", "-grid", "g.json"}, "mutually exclusive"},
		{"worker-plus-axis", []string{"-worker", "x:1", "-policies", "EPACT"}, "mutually exclusive"},
		{"worker-plus-csv", []string{"-worker", "x:1", "-csv", "out.csv"}, "mutually exclusive"},
		{"dist-plus-workers", []string{"-dist", "local:2", "-workers", "4"}, "in-process pool"},
		{"resume-without-mode", []string{"-resume", "ck"}, "needs a coordinator mode"},
		{"checkpoint-dir-without-mode", []string{"-checkpoint-dir", "ck"}, "needs a coordinator mode"},
		{"serve-blobs-without-mode", []string{"-serve-blobs=false"}, "needs a coordinator mode"},
		{"worker-plus-resume", []string{"-worker", "x:1", "-resume", "ck"}, "needs a coordinator mode"},
		{"resume-plus-checkpoint-dir", []string{"-dist", "local:2", "-resume", "a", "-checkpoint-dir", "b"}, "mutually exclusive"},
		{"resume-plus-grid", []string{"-dist", "local:2", "-resume", "a", "-grid", "g.json"}, "mutually exclusive"},
		{"resume-plus-axis", []string{"-dist", "local:2", "-resume", "a", "-policies", "EPACT"}, "mutually exclusive"},
		{"resume-missing-journal", []string{"-dist", "local:2", "-resume", "/does/not/exist"}, "reading checkpoint"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) error = %v, want mention of %q", c.args, err, c.want)
			}
			if stdout.Len() != 0 {
				t.Errorf("run(%v) wrote output despite failing:\n%s", c.args, stdout.String())
			}
		})
	}

	// A corrupt checkpoint journal is a loud startup error, never a
	// partial resume.
	t.Run("resume-corrupt-journal", func(t *testing.T) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.json"), []byte(`{"version":"dist-checkpoint-v1","grid":{`), 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		err := run([]string{"-dist", "local:2", "-resume", dir}, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), "decoding checkpoint") {
			t.Fatalf("corrupt journal error = %v, want a loud decode failure", err)
		}
	})

	// A malformed grid-intensity profile in a fleet file is a
	// scenario-level failure whose message carries the line number of
	// the offending entry, so a bad DC in a long hand-written fleet
	// file is findable.
	t.Run("malformed-intensity-profile", func(t *testing.T) {
		fleetPath := filepath.Join(t.TempDir(), "bad.json")
		body := "{\"name\":\"bad\",\"dcs\":[\n{\"name\":\"a\",\n\"grid_intensity\":[1,2,3]}]}"
		if err := os.WriteFile(fleetPath, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		var stdout, stderr bytes.Buffer
		err := run([]string{"-topology", "uniform@" + fleetPath, "-vms", "10", "-days", "1", "-history", "1",
			"-policies", "EPACT", "-predictors", "oracle", "-quiet"}, &stdout, &stderr)
		if err == nil || !strings.Contains(err.Error(), "want 24") {
			t.Fatalf("malformed profile error = %v, want the 24-hour shape complaint", err)
		}
		if !strings.Contains(err.Error(), "line ") {
			t.Errorf("malformed profile error %q carries no line number", err)
		}
	})

	// A missing trace file is a scenario-level failure: the table
	// records it and the exit is non-zero.
	var stdout, stderr bytes.Buffer
	err := run([]string{"-trace", "csv:/does/not/exist.csv", "-vms", "10", "-days", "1", "-history", "1",
		"-policies", "EPACT", "-predictors", "oracle", "-quiet"}, &stdout, &stderr)
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("missing trace file error = %v", err)
	}
	if !strings.Contains(stdout.String(), "no such file") {
		t.Errorf("missing trace file not recorded in the table:\n%s", stdout.String())
	}
}
