package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepArgs is the acceptance grid: 6 policies × 2 transition models
// × 2 pool sizes = 24 scenarios at a test-friendly scale.
func sweepArgs(extra ...string) []string {
	args := []string{
		"-policies", "EPACT,COAT,COAT-OPT,FFD,Verma-binary,load-balance",
		"-vms", "40",
		"-max-servers", "40,20",
		"-transitions", "none,default",
		"-predictors", "oracle",
		"-days", "1",
	}
	return append(args, extra...)
}

// TestWorkerCountDoesNotChangeOutput is the CLI-level determinism
// acceptance check: the same 24-scenario grid through -workers=1 and
// -workers=8 must produce byte-identical CSV.
func TestWorkerCountDoesNotChangeOutput(t *testing.T) {
	var outputs []string
	for _, workers := range []string{"1", "8"} {
		var stdout, stderr bytes.Buffer
		if err := run(sweepArgs("-workers", workers, "-quiet"), &stdout, &stderr); err != nil {
			t.Fatalf("workers=%s: %v\n%s", workers, err, stderr.String())
		}
		if n := strings.Count(stdout.String(), "\n"); n != 25 {
			t.Fatalf("workers=%s: %d CSV lines, want 25 (header + 24 scenarios)", workers, n)
		}
		outputs = append(outputs, stdout.String())
	}
	if outputs[0] != outputs[1] {
		t.Errorf("-workers=1 and -workers=8 disagree:\n%s\nvs\n%s", outputs[0], outputs[1])
	}
}

func TestGridFileAndOutputFiles(t *testing.T) {
	dir := t.TempDir()
	gridPath := filepath.Join(dir, "grid.json")
	csvPath := filepath.Join(dir, "out.csv")
	jsonPath := filepath.Join(dir, "out.json")
	if err := os.WriteFile(gridPath, []byte(`{
		"policies": ["EPACT", "COAT"],
		"vms": [40],
		"max_servers": [40],
		"eval_days": 1,
		"seeds": [2018],
		"predictors": ["oracle"]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	err := run([]string{"-grid", gridPath, "-csv", csvPath, "-json", jsonPath}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("%v\n%s", err, stderr.String())
	}

	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(csv, []byte("\n")); n != 3 {
		t.Errorf("CSV has %d lines, want 3 (header + 2 scenarios):\n%s", n, csv)
	}
	if !bytes.HasPrefix(csv, []byte("policy,predictor,")) {
		t.Errorf("CSV missing header:\n%s", csv)
	}
	js, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_energy_mj"`, `"EPACT"`, `"trace_builds": 1`} {
		if !bytes.Contains(js, []byte(want)) {
			t.Errorf("JSON missing %s", want)
		}
	}
	if !strings.Contains(stderr.String(), "2 scenarios") {
		t.Errorf("summary missing scenario count:\n%s", stderr.String())
	}
}

func TestBadFlagsSurfaceErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-policies", "nope"}, &stdout, &stderr); err == nil {
		t.Error("unknown policy did not fail")
	}
	if err := run([]string{"-vms", "forty"}, &stdout, &stderr); err == nil {
		t.Error("non-numeric -vms did not fail")
	}
	if err := run([]string{"-grid", "/does/not/exist.json"}, &stdout, &stderr); err == nil {
		t.Error("missing grid file did not fail")
	}
}
