// Command ntc-sweep runs a scenario grid through the concurrent
// sweep engine and emits a machine-readable results table plus a
// summary.
//
// The grid comes either from flags (comma-separated axis values) or
// from a JSON file via -grid; flags and file are mutually exclusive.
//
//	ntc-sweep -policies EPACT,COAT -vms 150 -days 2 -workers 8
//	ntc-sweep -grid grid.json -csv results.csv -json results.json
//
// Traces come from pluggable ingestion backends via -trace
// ("synthetic", "csv:file", "cluster:file"; see docs/TRACES.md), and
// -cache/-cache-dir enable the incremental result store: re-running a
// grid only executes scenarios whose inputs changed.
//
//	ntc-sweep -trace csv:week.csv -vms 200 -days 2 -history 2
//	ntc-sweep -grid grid.json -cache rw -cache-dir .sweep-cache
//
// Datacenter topologies come from fleet specs via -topology
// ("single", "[dispatcher@]builtin", "[dispatcher@]fleet.json"; see
// docs/TOPOLOGY.md): each scenario's VMs are dispatched across the
// fleet's datacenters and every datacenter simulates independently.
//
//	ntc-sweep -topology single,uniform@triad,greedy-proportional@triad -days 2
//
// The rebalance axis (-rebalance "off" or "epoch:N[@dispatcher]")
// re-runs cross-DC dispatch every N slots over the observed load and
// prices every VM moved between datacenters (migration energy,
// downtime violation-samples, latency-weighted QoS):
//
//	ntc-sweep -topology uniform@triad -rebalance off,epoch:4@greedy-proportional -days 2
//
// Sweeps also run distributed (see docs/DISTRIBUTED.md): -serve makes
// this process the coordinator for a grid, -worker joins a running
// coordinator from any machine sharing the input files, and
// -dist local:N runs the whole coordinator/worker protocol in-process.
//
//	ntc-sweep -grid grid.json -cache rw -cache-dir store -serve :8700
//	ntc-sweep -worker coordinator-host:8700
//	ntc-sweep -grid grid.json -dist local:8
//
// The CSV/JSON output is byte-identical for any -workers value, any
// cache state, and any distributed worker count: the engine seeds
// every scenario deterministically, orders results by grid expansion,
// and keeps execution metadata (timing, load and cache statistics)
// out of both serialisations.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/power"
	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/sweep/dist"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ntc-sweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: parses args, runs the sweep, and
// writes outputs. CSV goes to -csv (or stdout), the summary to stderr
// so piped CSV output stays clean.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ntc-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gridFile    = fs.String("grid", "", "JSON grid file (mutually exclusive with the axis flags)")
		policies    = fs.String("policies", "EPACT,COAT,COAT-OPT", "comma-separated policies ("+strings.Join(sweep.PolicyNames(), ", ")+")")
		vms         = fs.String("vms", "600", "comma-separated VM counts")
		maxServers  = fs.String("max-servers", "600", "comma-separated physical pool bounds (0 = unbounded)")
		days        = fs.Int("days", 7, "evaluated days")
		history     = fs.Int("history", 7, "history days fed to the predictor")
		seeds       = fs.String("seeds", "2018", "comma-separated trace seeds")
		static      = fs.String("static", "0", "comma-separated static-power overrides in W (0 = default 15 W)")
		predictors  = fs.String("predictors", "arima", "comma-separated predictors ("+strings.Join(sweep.PredictorNames(), ", ")+")")
		transitions = fs.String("transitions", "none", "comma-separated transition models ("+strings.Join(sweep.TransitionNames(), ", ")+")")
		churn       = fs.String("churn", "0", "comma-separated churn fractions in [0,1]")
		traces      = fs.String("trace", "synthetic", "comma-separated trace backends ("+strings.Join(trace.Backends(), ", ")+"), e.g. synthetic,csv:week.csv")
		topologies  = fs.String("topology", "single", "comma-separated fleet topologies ([dispatcher@]builtin or [dispatcher@]fleet.json; dispatchers: "+strings.Join(topology.DispatcherNames(), ", ")+"), e.g. single,greedy-proportional@triad")
		rebalances  = fs.String("rebalance", "off", `comma-separated cross-DC rebalance specs ("off" or "epoch:N[@dispatcher]"), e.g. off,epoch:4@greedy-proportional`)
		powerModels = fs.String("power-model", "ntc", "comma-separated server power models ("+strings.Join(power.ModelNames(), ", ")+"); changes energy/carbon pricing only, never placement")
		workers     = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheMode   = fs.String("cache", "off", "incremental result cache: off, rw (read+write), ro (read-only)")
		cacheDir    = fs.String("cache-dir", "", "result-cache directory (required unless -cache off)")
		csvPath     = fs.String("csv", "", "write the CSV table here instead of stdout")
		jsonPath    = fs.String("json", "", "also write full results as JSON here")
		quiet       = fs.Bool("quiet", false, "suppress the summary")
		serveAddr   = fs.String("serve", "", "run as distributed-sweep coordinator on this address (host:port; see docs/DISTRIBUTED.md)")
		workerAddr  = fs.String("worker", "", "run as a distributed-sweep worker against the coordinator at this address")
		distSpec    = fs.String("dist", "", `distributed execution in one process: "local:N" = coordinator + N workers`)
		leaseTTL    = fs.Duration("lease-ttl", time.Minute, "distributed modes: re-lease a scenario not completed within this window (crashed-worker retry)")
		ckptDir     = fs.String("checkpoint-dir", "", "coordinator modes: journal completed rows here (atomic rename) so a killed run resumes with -resume")
		resumeDir   = fs.String("resume", "", "resume a killed coordinator from this checkpoint directory (the journal defines the grid)")
		serveBlobs  = fs.Bool("serve-blobs", true, "coordinator modes: ship file-backed trace/fleet inputs to workers without filesystem access to their paths")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	// The distributed modes are mutually exclusive ways to execute
	// one grid (and -worker executes someone else's grid).
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	modes := 0
	for _, m := range []string{*serveAddr, *workerAddr, *distSpec} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-serve, -worker and -dist are mutually exclusive")
	}
	// Validate the -dist spec up front with the other flag checks —
	// a typo should fail before any banner or cache directory I/O.
	distWorkers := 0
	if *distSpec != "" {
		var err error
		if distWorkers, err = parseDistSpec(*distSpec); err != nil {
			return err
		}
	}
	if (*serveAddr != "" || *distSpec != "") && set["workers"] {
		return fmt.Errorf("-workers applies to the in-process pool only; distributed modes size their own worker sets")
	}
	// Checkpointing, resume and blob serving are coordinator features:
	// they need a coordinator in this process to act on.
	coordinatorMode := *serveAddr != "" || *distSpec != ""
	for _, f := range []struct {
		name string
		used bool
	}{
		{"checkpoint-dir", *ckptDir != ""},
		{"resume", *resumeDir != ""},
		{"serve-blobs", set["serve-blobs"]},
	} {
		if f.used && !coordinatorMode {
			return fmt.Errorf("-%s needs a coordinator mode (-serve or -dist local:N)", f.name)
		}
	}
	if *resumeDir != "" && *ckptDir != "" {
		return fmt.Errorf("-resume and -checkpoint-dir are mutually exclusive (a resumed run keeps journaling to the checkpoint it resumes from)")
	}
	if *workerAddr != "" {
		// A worker owns nothing: the coordinator defines the grid,
		// the cache and the outputs. Any other flag (allowlist aside)
		// is a command line that reads like it does something it
		// doesn't — the allowlist keeps this check correct as flags
		// are added.
		allowed := map[string]bool{"worker": true, "quiet": true}
		for f := range set {
			if !allowed[f] {
				return fmt.Errorf("-worker and -%s are mutually exclusive (the coordinator owns the grid, cache and outputs)", f)
			}
		}
		// Remote workers poll gently: the in-process default (25 ms)
		// is tuned for goroutines sharing a mutex, not for N machines
		// hammering one coordinator over HTTP while starved.
		n, err := dist.Work(context.Background(), dist.NewClient(*workerAddr), dist.WorkerOptions{Poll: 2 * time.Second})
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Fprintf(stderr, "worker: executed %d scenarios for %s\n", n, *workerAddr)
		}
		return nil
	}

	mode, err := cache.ParseMode(*cacheMode)
	if err != nil {
		return err
	}
	store, err := cache.Open(*cacheDir, mode)
	if err != nil {
		return err
	}

	var g sweep.Grid
	var ck *dist.Checkpoint
	if *resumeDir != "" {
		// A resumed run's grid comes from the journal — the axis flags
		// and -grid would describe a possibly different grid, so they
		// conflict the same way -grid conflicts with axis flags.
		if conflict := firstAxisFlag(fs); conflict != "" {
			return fmt.Errorf("-resume and -%s are mutually exclusive (the checkpoint journal defines the grid)", conflict)
		}
		if *gridFile != "" {
			return fmt.Errorf("-resume and -grid are mutually exclusive (the checkpoint journal defines the grid)")
		}
		var err error
		if ck, err = dist.LoadCheckpoint(*resumeDir); err != nil {
			return err
		}
		g = ck.Grid
	} else if *gridFile != "" {
		// The axis flags and -grid are mutually exclusive: silently
		// ignoring explicit flags would run a different grid than the
		// command line reads.
		if conflict := firstAxisFlag(fs); conflict != "" {
			return fmt.Errorf("-grid and -%s are mutually exclusive (the grid file defines every axis)", conflict)
		}
		data, err := os.ReadFile(*gridFile)
		if err != nil {
			return err
		}
		if g, err = sweep.ParseGridJSON(data); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = gridFromFlags(*policies, *vms, *maxServers, *seeds, *static,
			*predictors, *transitions, *churn, *traces, *topologies, *rebalances,
			*powerModels, *days, *history); err != nil {
			return err
		}
	}

	// Expand before running so an unknown axis value (policy,
	// predictor, transition, trace backend, ...) is a clear error and
	// a non-zero exit, never a partial or empty table.
	scens, err := sweep.Expand(g)
	if err != nil {
		return err
	}
	if !*quiet {
		if ck != nil {
			fmt.Fprintf(stderr, "resuming: %d of %d rows restored from %s\n", ck.Completed, len(scens), *resumeDir)
		}
		fmt.Fprintf(stderr, "running %d scenarios...\n", len(scens))
	}

	// Both coordinator modes build the coordinator the same way; only
	// the transport differs (HTTP listener vs in-process goroutines).
	dopt := dist.Options{Cache: store, LeaseTTL: *leaseTTL, CheckpointDir: *ckptDir, DisableBlobs: !*serveBlobs}
	makeCoordinator := func() (*dist.Coordinator, error) {
		if ck != nil {
			return dist.Resume(ck, dopt)
		}
		return dist.NewCoordinator(g, dopt)
	}

	var res *sweep.Results
	switch {
	case *serveAddr != "":
		var c *dist.Coordinator
		if c, err = makeCoordinator(); err == nil {
			res, err = serveCoordinator(*serveAddr, c, *quiet, stderr)
		}
	case *distSpec != "":
		var c *dist.Coordinator
		if c, err = makeCoordinator(); err == nil {
			var stats dist.Stats
			res, stats, err = dist.RunCoordinator(context.Background(), c, distWorkers)
			if err == nil && !*quiet {
				printDistStats(stderr, stats)
			}
		}
	default:
		res, err = sweep.Run(g, sweep.Options{Workers: *workers, Cache: store})
	}
	if err != nil {
		return err
	}

	csv := res.CSV()
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(stdout, csv); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	if !*quiet {
		if err := res.Summary(stderr); err != nil {
			return err
		}
	} else if res.CacheErr != nil {
		// Cache write failures are warnings (results are complete),
		// but never swallow them entirely.
		fmt.Fprintf(stderr, "ntc-sweep: warning: %v\n", res.CacheErr)
	}
	// Scenario failures are recorded in the table; surface them on
	// the exit code too.
	return res.Failed()
}

// serveCoordinator runs a distributed sweep's coordinator: serve the
// HTTP/JSON worker protocol on addr until every scenario has a row,
// then linger briefly so polling workers observe the done signal
// before the listener closes, and return the merged results.
func serveCoordinator(addr string, c *dist.Coordinator, quiet bool, stderr io.Writer) (*sweep.Results, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(stderr, "coordinator: listening on %s\n", ln.Addr())
	}
	srv := &http.Server{Handler: dist.NewHandler(c)}
	go srv.Serve(ln) //nolint:errcheck // Shutdown below is the exit path

	res, err := c.Wait(context.Background())
	// Linger so workers sleeping in their poll interval (2 s for
	// remote workers) observe the done signal before the listener
	// closes; their retry backoff bridges the remainder. A fully warm
	// sweep that no worker ever executed for has nobody to signal.
	if c.Stats().Workers > 0 {
		time.Sleep(3 * time.Second)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err != nil {
		return nil, err
	}
	if !quiet {
		printDistStats(stderr, c.Stats())
	}
	return res, nil
}

// parseDistSpec parses the -dist value ("local:N").
func parseDistSpec(spec string) (int, error) {
	rest, ok := strings.CutPrefix(spec, "local:")
	if !ok {
		return 0, fmt.Errorf(`-dist: unknown spec %q (want "local:N")`, spec)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf(`-dist: worker count in %q must be a positive integer`, spec)
	}
	return n, nil
}

// firstAxisFlag returns the first explicitly-set axis flag, for the
// mutual-exclusion checks against grid-defining sources (-grid, the
// -resume journal).
func firstAxisFlag(fs *flag.FlagSet) string {
	axisFlags := map[string]bool{
		"policies": true, "vms": true, "max-servers": true, "days": true,
		"history": true, "seeds": true, "static": true, "predictors": true,
		"transitions": true, "churn": true, "trace": true, "topology": true,
		"rebalance": true, "power-model": true,
	}
	conflict := ""
	fs.Visit(func(f *flag.Flag) {
		if axisFlags[f.Name] && conflict == "" {
			conflict = f.Name
		}
	})
	return conflict
}

// printDistStats reports coordinator traffic next to the summary.
// New counters append after the original eight fields: the warm-cache
// CI gate greps this line by prefix.
func printDistStats(w io.Writer, s dist.Stats) {
	fmt.Fprintf(w, "dist: %d units (%d cache hits), %d leases to %d workers, %d renewed, %d expired, %d stale, %d duplicate, %d released, %d resumed, %d blobs\n",
		s.Units, s.CacheHits, s.Leases, s.Workers, s.Renewals, s.Expired, s.Stale, s.Duplicates,
		s.Released, s.Resumed, s.Blobs)
}

// gridFromFlags assembles a grid from the comma-separated axis flags.
func gridFromFlags(policies, vms, maxServers, seeds, static, predictors, transitions, churn, traces, topologies, rebalances, powerModels string, days, history int) (sweep.Grid, error) {
	g := sweep.Grid{
		Policies:    splitList(policies),
		Predictors:  splitList(predictors),
		Traces:      splitList(traces),
		Topologies:  splitList(topologies),
		Rebalances:  splitList(rebalances),
		PowerModels: splitList(powerModels),
		EvalDays:    days,
		HistoryDays: history,
	}
	for _, name := range splitList(transitions) {
		g.Transitions = append(g.Transitions, sweep.TransitionSpec{Name: name})
	}
	var err error
	if g.VMs, err = parseInts("vms", vms); err != nil {
		return g, err
	}
	if g.MaxServers, err = parseInts("max-servers", maxServers); err != nil {
		return g, err
	}
	if g.Seeds, err = parseInt64s("seeds", seeds); err != nil {
		return g, err
	}
	if g.StaticPowerW, err = parseFloats("static", static); err != nil {
		return g, err
	}
	if g.ChurnFractions, err = parseFloats("churn", churn); err != nil {
		return g, err
	}
	return g, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(flag, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(flag, s string) ([]int64, error) {
	var out []int64
	for _, f := range splitList(s) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(flag, s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}
