// Command ntc-sweep runs a scenario grid through the concurrent
// sweep engine and emits a machine-readable results table plus a
// summary.
//
// The grid comes either from flags (comma-separated axis values) or
// from a JSON file via -grid; flags and file are mutually exclusive.
//
//	ntc-sweep -policies EPACT,COAT -vms 150 -days 2 -workers 8
//	ntc-sweep -grid grid.json -csv results.csv -json results.json
//
// Traces come from pluggable ingestion backends via -trace
// ("synthetic", "csv:file", "cluster:file"; see docs/TRACES.md), and
// -cache/-cache-dir enable the incremental result store: re-running a
// grid only executes scenarios whose inputs changed.
//
//	ntc-sweep -trace csv:week.csv -vms 200 -days 2 -history 2
//	ntc-sweep -grid grid.json -cache rw -cache-dir .sweep-cache
//
// Datacenter topologies come from fleet specs via -topology
// ("single", "[dispatcher@]builtin", "[dispatcher@]fleet.json"; see
// docs/TOPOLOGY.md): each scenario's VMs are dispatched across the
// fleet's datacenters and every datacenter simulates independently.
//
//	ntc-sweep -topology single,uniform@triad,greedy-proportional@triad -days 2
//
// The CSV/JSON output is byte-identical for any -workers value and
// any cache state: the engine seeds every scenario deterministically,
// orders results by grid expansion, and keeps execution metadata
// (timing, load and cache statistics) out of both serialisations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/sweep"
	"repro/internal/sweep/cache"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ntc-sweep:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: parses args, runs the sweep, and
// writes outputs. CSV goes to -csv (or stdout), the summary to stderr
// so piped CSV output stays clean.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ntc-sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		gridFile    = fs.String("grid", "", "JSON grid file (mutually exclusive with the axis flags)")
		policies    = fs.String("policies", "EPACT,COAT,COAT-OPT", "comma-separated policies ("+strings.Join(sweep.PolicyNames(), ", ")+")")
		vms         = fs.String("vms", "600", "comma-separated VM counts")
		maxServers  = fs.String("max-servers", "600", "comma-separated physical pool bounds (0 = unbounded)")
		days        = fs.Int("days", 7, "evaluated days")
		history     = fs.Int("history", 7, "history days fed to the predictor")
		seeds       = fs.String("seeds", "2018", "comma-separated trace seeds")
		static      = fs.String("static", "0", "comma-separated static-power overrides in W (0 = default 15 W)")
		predictors  = fs.String("predictors", "arima", "comma-separated predictors ("+strings.Join(sweep.PredictorNames(), ", ")+")")
		transitions = fs.String("transitions", "none", "comma-separated transition models ("+strings.Join(sweep.TransitionNames(), ", ")+")")
		churn       = fs.String("churn", "0", "comma-separated churn fractions in [0,1]")
		traces      = fs.String("trace", "synthetic", "comma-separated trace backends ("+strings.Join(trace.Backends(), ", ")+"), e.g. synthetic,csv:week.csv")
		topologies  = fs.String("topology", "single", "comma-separated fleet topologies ([dispatcher@]builtin or [dispatcher@]fleet.json; dispatchers: "+strings.Join(topology.DispatcherNames(), ", ")+"), e.g. single,greedy-proportional@triad")
		workers     = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cacheMode   = fs.String("cache", "off", "incremental result cache: off, rw (read+write), ro (read-only)")
		cacheDir    = fs.String("cache-dir", "", "result-cache directory (required unless -cache off)")
		csvPath     = fs.String("csv", "", "write the CSV table here instead of stdout")
		jsonPath    = fs.String("json", "", "also write full results as JSON here")
		quiet       = fs.Bool("quiet", false, "suppress the summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	mode, err := cache.ParseMode(*cacheMode)
	if err != nil {
		return err
	}
	store, err := cache.Open(*cacheDir, mode)
	if err != nil {
		return err
	}

	var g sweep.Grid
	if *gridFile != "" {
		// The axis flags and -grid are mutually exclusive: silently
		// ignoring explicit flags would run a different grid than the
		// command line reads.
		axisFlags := map[string]bool{
			"policies": true, "vms": true, "max-servers": true, "days": true,
			"history": true, "seeds": true, "static": true, "predictors": true,
			"transitions": true, "churn": true, "trace": true, "topology": true,
		}
		conflict := ""
		fs.Visit(func(f *flag.Flag) {
			if axisFlags[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-grid and -%s are mutually exclusive (the grid file defines every axis)", conflict)
		}
		data, err := os.ReadFile(*gridFile)
		if err != nil {
			return err
		}
		if g, err = sweep.ParseGridJSON(data); err != nil {
			return err
		}
	} else {
		var err error
		if g, err = gridFromFlags(*policies, *vms, *maxServers, *seeds, *static,
			*predictors, *transitions, *churn, *traces, *topologies, *days, *history); err != nil {
			return err
		}
	}

	// Expand before running so an unknown axis value (policy,
	// predictor, transition, trace backend, ...) is a clear error and
	// a non-zero exit, never a partial or empty table.
	scens, err := sweep.Expand(g)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintf(stderr, "running %d scenarios...\n", len(scens))
	}

	res, err := sweep.Run(g, sweep.Options{Workers: *workers, Cache: store})
	if err != nil {
		return err
	}

	csv := res.CSV()
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
			return err
		}
	} else {
		if _, err := io.WriteString(stdout, csv); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		data, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	if !*quiet {
		if err := res.Summary(stderr); err != nil {
			return err
		}
	} else if res.CacheErr != nil {
		// Cache write failures are warnings (results are complete),
		// but never swallow them entirely.
		fmt.Fprintf(stderr, "ntc-sweep: warning: %v\n", res.CacheErr)
	}
	// Scenario failures are recorded in the table; surface them on
	// the exit code too.
	return res.Failed()
}

// gridFromFlags assembles a grid from the comma-separated axis flags.
func gridFromFlags(policies, vms, maxServers, seeds, static, predictors, transitions, churn, traces, topologies string, days, history int) (sweep.Grid, error) {
	g := sweep.Grid{
		Policies:    splitList(policies),
		Predictors:  splitList(predictors),
		Traces:      splitList(traces),
		Topologies:  splitList(topologies),
		EvalDays:    days,
		HistoryDays: history,
	}
	for _, name := range splitList(transitions) {
		g.Transitions = append(g.Transitions, sweep.TransitionSpec{Name: name})
	}
	var err error
	if g.VMs, err = parseInts("vms", vms); err != nil {
		return g, err
	}
	if g.MaxServers, err = parseInts("max-servers", maxServers); err != nil {
		return g, err
	}
	if g.Seeds, err = parseInt64s("seeds", seeds); err != nil {
		return g, err
	}
	if g.StaticPowerW, err = parseFloats("static", static); err != nil {
		return g, err
	}
	if g.ChurnFractions, err = parseFloats("churn", churn); err != nil {
		return g, err
	}
	return g, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(flag, s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInt64s(flag, s string) ([]int64, error) {
	var out []int64
	for _, f := range splitList(s) {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(flag, s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", flag, err)
		}
		out = append(out, v)
	}
	return out, nil
}
