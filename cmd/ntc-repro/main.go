// Command ntc-repro regenerates every table and figure of the paper's
// evaluation section and writes both human-readable output (stdout)
// and CSV files (under -out).
//
// Usage:
//
//	ntc-repro [-out results] [-vms 600] [-days 7] [-seed 2018]
//	          [-quick] [-skip-dc] [-arima=true]
//
// -quick shrinks the data-center runs (150 VMs, 2 days) for a fast
// end-to-end pass; the defaults reproduce the paper's scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/dcsim"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		outDir = flag.String("out", "results", "directory for CSV output")
		vms    = flag.Int("vms", 600, "number of VMs in the data-center runs")
		days   = flag.Int("days", 7, "evaluated days (after 7 history days)")
		seed   = flag.Int64("seed", 2018, "trace generator seed")
		quick  = flag.Bool("quick", false, "reduced-scale data-center runs")
		skipDC = flag.Bool("skip-dc", false, "skip the data-center experiments (Figs 4-7)")
		arima  = flag.Bool("arima", true, "use ARIMA predictions (false = oracle)")
		ext    = flag.Bool("extensions", false, "also run the extension experiments (policy zoo, churn)")
	)
	flag.Parse()

	if err := run(*outDir, *vms, *days, *seed, *quick, *skipDC, *arima, *ext); err != nil {
		fmt.Fprintln(os.Stderr, "ntc-repro:", err)
		os.Exit(1)
	}
}

func run(outDir string, vms, days int, seed int64, quick, skipDC, arima, ext bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	writeCSV := func(name, data string) error {
		return os.WriteFile(filepath.Join(outDir, name), []byte(data), 0o644)
	}

	fmt.Println("== Table I ==")
	tbl := experiments.TableI()
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("table1.csv", tbl.CSV()); err != nil {
		return err
	}

	fmt.Println("\n== Fig 1a (NTC DC) ==")
	f1a, err := experiments.Fig1a()
	if err != nil {
		return err
	}
	if err := f1a.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig1a.csv", f1a.CSV()); err != nil {
		return err
	}

	fmt.Println("\n== Fig 1b (non-NTC DC) ==")
	f1b, err := experiments.Fig1b()
	if err != nil {
		return err
	}
	if err := f1b.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig1b.csv", f1b.CSV()); err != nil {
		return err
	}

	fmt.Println("\n== Fig 2 ==")
	f2, err := experiments.Fig2()
	if err != nil {
		return err
	}
	if err := f2.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig2.csv", f2.CSV()); err != nil {
		return err
	}

	fmt.Println("\n== Fig 3 ==")
	f3, err := experiments.Fig3()
	if err != nil {
		return err
	}
	if err := f3.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig3.csv", f3.CSV()); err != nil {
		return err
	}

	if skipDC {
		fmt.Println("\n(data-center experiments skipped)")
		return nil
	}

	cfg := experiments.DefaultDCConfig()
	cfg.VMs = vms
	cfg.EvalDays = days
	cfg.Seed = seed
	cfg.UseARIMA = arima
	if quick {
		cfg.VMs = 150
		cfg.EvalDays = 2
	}

	fmt.Printf("\n== Figs 4-6 (%d VMs, %d days, predictor=%v) ==\n", cfg.VMs, cfg.EvalDays, arima)
	week, err := experiments.Fig4to6(cfg)
	if err != nil {
		return err
	}
	if err := week.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig4to6.csv", week.CSV()); err != nil {
		return err
	}

	// Figure shapes at a glance.
	fmt.Println("\nper-slot energy (MJ):")
	for _, p := range week.Policies {
		if err := report.Series(os.Stdout, p, week.EnergyMJ[p], 60); err != nil {
			return err
		}
	}
	fmt.Println("per-slot violations:")
	for _, p := range week.Policies {
		viol := make([]float64, len(week.Violations[p]))
		for i, v := range week.Violations[p] {
			viol[i] = float64(v)
		}
		if err := report.Series(os.Stdout, p, viol, 60); err != nil {
			return err
		}
	}

	fmt.Println("\n== Fig 7 (static-power sweep) ==")
	f7, err := experiments.Fig7(cfg)
	if err != nil {
		return err
	}
	if err := f7.Render(os.Stdout); err != nil {
		return err
	}
	if err := writeCSV("fig7.csv", f7.CSV()); err != nil {
		return err
	}

	if ext {
		fmt.Println("\n== Extensions: policy zoo (with transition costs) ==")
		zoo, err := experiments.PolicyZoo(cfg, dcsim.DefaultTransitions())
		if err != nil {
			return err
		}
		var bars []report.Bar
		for _, r := range zoo {
			bars = append(bars, report.Bar{Label: r.Policy, Value: r.EnergyMJ})
			fmt.Printf("%-14s %8.1f MJ  %6d viol  %5.1f servers  %5d migrations (%.1f MJ)\n",
				r.Policy, r.EnergyMJ, r.Violations, r.MeanActive, r.Migrations, r.TransitionMJ)
		}
		fmt.Println()
		if err := report.BarChart(os.Stdout, bars, 40, " MJ"); err != nil {
			return err
		}

		fmt.Println("\n== Extensions: churn sensitivity ==")
		churn, err := experiments.ChurnSensitivity(cfg)
		if err != nil {
			return err
		}
		for _, r := range churn {
			fmt.Printf("churn %.0f%%: %d VMs affected, EPACT %.1f MJ vs COAT %.1f MJ (saving %.1f%%)\n",
				r.ChurnFraction*100, r.AffectedVMs, r.EPACTEnergyMJ, r.COATEnergyMJ, r.SavingPct)
		}
	}

	fmt.Printf("\nCSV written to %s/\n", outDir)
	return nil
}
