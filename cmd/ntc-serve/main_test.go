package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe stderr sink: serveHTTP writes its
// banners from the serving goroutine while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// smallArgs is a fast live scenario: triad under the epoch
// rebalancer, one eval day (24 slots), ephemeral port.
func smallArgs(extra ...string) []string {
	args := []string{
		"-addr", "127.0.0.1:0",
		"-vms", "48", "-max-servers", "48",
		"-days", "1", "-history", "1",
		"-predictor", "oracle", "-transitions", "default",
		"-topology", "triad", "-rebalance", "epoch:4",
	}
	return append(args, extra...)
}

func TestSetupRejectsBadFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"unknown-flag", []string{"-definitely-not-a-flag"}},
		{"positional-args", smallArgs("stray")},
		{"bad-policy", smallArgs("-policy", "nope")},
		{"bad-rebalance", smallArgs("-rebalance", "epoch:zero")},
		{"bad-cache-mode", smallArgs("-cache", "sideways")},
		{"cache-without-dir", smallArgs("-cache", "rw")},
		{"bad-power-model", smallArgs("-power-model", "sdp")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var errb syncBuffer
			_, ln, _, err := setup(tc.args, &errb)
			if err == nil {
				ln.Close()
				t.Fatalf("setup(%v) accepted", tc.args)
			}
		})
	}
}

// TestServeEndToEnd boots the daemon on an ephemeral port and drives
// the manual-tick loop over real HTTP: health, step, status, scrape.
func TestServeEndToEnd(t *testing.T) {
	var errb syncBuffer
	s, ln, tick, err := setup(smallArgs("-cache", "rw", "-cache-dir", t.TempDir()), &errb)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	defer ln.Close()
	if tick != 0 {
		t.Fatalf("default tick = %v, want 0 (manual)", tick)
	}
	go serveHTTP(s, ln, tick, &errb) //nolint:errcheck // closing ln ends it

	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Post(base+"/v1/step", "application/json", strings.NewReader(`{"slots": 6}`))
	if err != nil {
		t.Fatalf("POST /v1/step: %v", err)
	}
	var sr struct {
		Slot  int  `json:"slot"`
		Slots int  `json:"slots"`
		Done  bool `json:"done"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding step response: %v", err)
	}
	resp.Body.Close()
	if sr.Slot != 6 || sr.Slots != 24 || sr.Done {
		t.Fatalf("step response %+v, want slot 6 of 24", sr)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ntc_slot{session=\"default\"} 6\n",
		"ntc_slots{session=\"default\"} 24\n",
		`ntc_dc_active_servers{session="default",dc="core"}`,
		"# EOF\n",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/metrics page missing %q:\n%s", want, page)
		}
	}

	// A second session shards the same page under its own label.
	resp, err = http.Post(base+"/v1/sessions", "application/json",
		strings.NewReader(`{"id": "hot", "static_power_w": [30]}`))
	if err != nil {
		t.Fatalf("POST /v1/sessions: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST /v1/sessions: status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	page, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ntc_slot{session=\"default\"} 6\n",
		"ntc_slot{session=\"hot\"} 0\n",
	} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("/metrics page missing %q:\n%s", want, page)
		}
	}

	// A what-if against the empty-but-writable store executes, and
	// the identical repeat answers warm with zero executions.
	whatif := func() (executed, hits int) {
		resp, err := http.Post(base+"/v1/whatif", "application/json",
			strings.NewReader(`{"policies": ["EPACT", "COAT"]}`))
		if err != nil {
			t.Fatalf("POST /v1/whatif: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/whatif: status %d", resp.StatusCode)
		}
		var wr struct {
			Scenarios int `json:"scenarios"`
			Executed  int `json:"executed"`
			CacheHits int `json:"cache_hits"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
			t.Fatalf("decoding what-if response: %v", err)
		}
		if wr.Scenarios != 2 {
			t.Fatalf("what-if answered %d scenarios, want 2", wr.Scenarios)
		}
		return wr.Executed, wr.CacheHits
	}
	if executed, hits := whatif(); executed != 2 || hits != 0 {
		t.Fatalf("cold what-if: executed=%d hits=%d, want 2/0", executed, hits)
	}
	if executed, hits := whatif(); executed != 0 || hits != 2 {
		t.Fatalf("warm what-if: executed=%d hits=%d, want 0/2", executed, hits)
	}

	if !strings.Contains(errb.String(), "ntc-serve: listening on 127.0.0.1:") {
		t.Fatalf("missing listen banner in stderr:\n%s", errb.String())
	}
	if !strings.Contains(errb.String(), "manual ticks") {
		t.Fatalf("missing manual-tick banner in stderr:\n%s", errb.String())
	}
}

// TestServeTicker checks the wall-clock mode: with -tick the replay
// advances without any /v1/step traffic.
func TestServeTicker(t *testing.T) {
	var errb syncBuffer
	s, ln, tick, err := setup(smallArgs("-tick", "5ms"), &errb)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	defer ln.Close()
	go serveHTTP(s, ln, tick, &errb) //nolint:errcheck // closing ln ends it

	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Slot == 0 {
		if time.Now().After(deadline) {
			t.Fatal("ticker never advanced the replay")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
