// Command ntc-serve is the live fleet service: it hosts concurrent
// scenario sessions, each replaying one sweep scenario slot by slot
// (1 slot = 1 hour of trace time), and serves
//
//	GET  /metrics            one OpenMetrics page over all sessions
//	POST /v1/sessions        create a session (axis deltas, live ingestion)
//	GET  /v1/sessions        list sessions
//	DELETE /v1/sessions/{id} retire a session
//	POST /v1/sessions/{id}/step|whatif|observe, GET .../status
//	POST /v1/whatif|step, GET /v1/status   aliases onto the default session
//	GET  /healthz            liveness probe
//
// The default session's scenario comes from single-valued axis flags
// (the same axes ntc-sweep sweeps); further sessions are created over
// HTTP as deltas against that base. With -tick every session advances
// on a wall-clock ticker; without it replays only move when stepped,
// which is what the CI serve gate and scripted experiments use.
//
//	ntc-serve -addr :8740 -topology uniform@triad -rebalance epoch:4 -tick 2s
//	ntc-serve -addr :8740 -cache rw -cache-dir store   # manual ticks, warm what-ifs
//
// What-if deltas re-use the incremental result store (-cache/-cache-dir,
// shared with ntc-sweep): a warm store answers without executing a
// single scenario. See docs/SERVING.md for the endpoint and gauge
// reference.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/sweep"
	"repro/internal/sweep/cache"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ntc-serve:", err)
		os.Exit(1)
	}
}

// run is the testable entry point: parse flags, build the service,
// announce the bound address on stderr, and serve until the process
// dies (the daemon has no other exit path).
func run(args []string, stdout, stderr io.Writer) error {
	s, ln, tick, err := setup(args, stderr)
	if err != nil {
		return err
	}
	return serveHTTP(s, ln, tick, stderr)
}

// setup parses flags and builds the server plus its listener — split
// from run so tests can drive a fully configured service without
// blocking in Serve.
func setup(args []string, stderr io.Writer) (*serve.Server, net.Listener, time.Duration, error) {
	fs, fl := newFlags(stderr)
	if err := fs.Parse(args); err != nil {
		return nil, nil, 0, err
	}
	if fs.NArg() > 0 {
		return nil, nil, 0, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	mode, err := cache.ParseMode(*fl.cacheMode)
	if err != nil {
		return nil, nil, 0, err
	}
	store, err := cache.Open(*fl.cacheDir, mode)
	if err != nil {
		return nil, nil, 0, err
	}

	s, err := serve.New(serve.Options{
		Grid: sweep.Grid{
			Policies:       []string{*fl.policy},
			VMs:            []int{*fl.vms},
			MaxServers:     []int{*fl.maxServers},
			HistoryDays:    *fl.history,
			EvalDays:       *fl.days,
			Seeds:          []int64{*fl.seed},
			StaticPowerW:   []float64{*fl.static},
			Predictors:     []string{*fl.predictor},
			Transitions:    []sweep.TransitionSpec{{Name: *fl.transitions}},
			ChurnFractions: []float64{*fl.churn},
			Traces:         []string{*fl.trace},
			Topologies:     []string{*fl.topology},
			Rebalances:     []string{*fl.rebalance},
			PowerModels:    []string{*fl.powerModel},
		},
		Cache:              store,
		MaxWhatIfScenarios: *fl.whatifMax,
		MaxWhatIfVMs:       *fl.whatifVMs,
		WhatIfWorkers:      *fl.whatifWorkers,
		MaxSessions:        *fl.maxSessions,
	})
	if err != nil {
		return nil, nil, 0, err
	}

	ln, err := net.Listen("tcp", *fl.addr)
	if err != nil {
		return nil, nil, 0, err
	}
	return s, ln, *fl.tick, nil
}

// serveHTTP announces the service and serves it forever, ticking the
// replay when a wall-clock interval is configured.
func serveHTTP(s *serve.Server, ln net.Listener, tick time.Duration, stderr io.Writer) error {
	snap := s.Snapshot()
	fmt.Fprintf(stderr, "ntc-serve: listening on %s\n", ln.Addr())
	fmt.Fprintf(stderr, "ntc-serve: scenario %s (%d slots)\n", s.Scenario().ID(), snap.Slots)
	if tick > 0 {
		fmt.Fprintf(stderr, "ntc-serve: advancing 1 slot per %s\n", tick)
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for range t.C {
				// Tick advances every live session one slot; finished
				// replays and ingestion sessions awaiting samples are
				// no-ops, so the ticker keeps every session live. A
				// failed session stays failed; keep ticking the rest.
				if err := s.Tick(); err != nil {
					fmt.Fprintf(stderr, "ntc-serve: tick: %v\n", err)
				}
			}
		}()
	} else {
		fmt.Fprintln(stderr, "ntc-serve: manual ticks (POST /v1/step)")
	}
	return http.Serve(ln, s.Handler())
}

// flags holds the parsed flag values; newFlags binds them so setup
// and the tests share one definition.
type flags struct {
	addr          *string
	tick          *time.Duration
	policy        *string
	vms           *int
	maxServers    *int
	days          *int
	history       *int
	seed          *int64
	static        *float64
	predictor     *string
	transitions   *string
	churn         *float64
	trace         *string
	topology      *string
	rebalance     *string
	powerModel    *string
	cacheMode     *string
	cacheDir      *string
	whatifMax     *int
	whatifVMs     *int
	whatifWorkers *int
	maxSessions   *int
}

func newFlags(stderr io.Writer) (*flag.FlagSet, *flags) {
	fs := flag.NewFlagSet("ntc-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fl := &flags{
		addr:          fs.String("addr", "127.0.0.1:8740", "listen address (host:port)"),
		tick:          fs.Duration("tick", 0, "advance one slot per interval (0 = manual ticks via POST /v1/step)"),
		policy:        fs.String("policy", "EPACT", "allocation policy"),
		vms:           fs.Int("vms", 600, "trace VM count"),
		maxServers:    fs.Int("max-servers", 600, "physical pool bound (0 = unbounded)"),
		days:          fs.Int("days", 7, "evaluated days (24 slots/day)"),
		history:       fs.Int("history", 7, "history days fed to the predictor"),
		seed:          fs.Int64("seed", 2018, "trace seed"),
		static:        fs.Float64("static", 0, "static-power override in W (0 = default 15 W)"),
		predictor:     fs.String("predictor", "arima", "forecast variant"),
		transitions:   fs.String("transitions", "none", "transition-cost model"),
		churn:         fs.Float64("churn", 0, "VM churn fraction in [0,1]"),
		trace:         fs.String("trace", "synthetic", "trace backend spec (synthetic, csv:file, cluster:file)"),
		topology:      fs.String("topology", "single", "fleet topology ([dispatcher@]builtin or [dispatcher@]fleet.json)"),
		rebalance:     fs.String("rebalance", "off", `cross-DC rebalance spec ("off" or "epoch:N[@dispatcher]")`),
		powerModel:    fs.String("power-model", "ntc", "server power model (ntc, tdp); changes energy/carbon pricing only, never placement"),
		cacheMode:     fs.String("cache", "off", "what-if result cache: off, rw (read+write), ro (read-only)"),
		cacheDir:      fs.String("cache-dir", "", "result-cache directory (required unless -cache off)"),
		whatifMax:     fs.Int("whatif-max", serve.DefaultMaxWhatIfScenarios, "max scenarios one what-if request may expand to"),
		whatifVMs:     fs.Int("whatif-vms", serve.DefaultMaxWhatIfVMs, "max VM count a what-if may ask for"),
		whatifWorkers: fs.Int("whatif-workers", serve.DefaultWhatIfWorkers, "concurrent what-if scenario executions"),
		maxSessions:   fs.Int("max-sessions", serve.DefaultMaxSessions, "max concurrent sessions, the default session included"),
	}
	return fs, fl
}
