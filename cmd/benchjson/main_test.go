package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: SomeCPU
BenchmarkTableI-8   	       3	     53318 ns/op
BenchmarkTableI-8   	       3	     51000 ns/op
BenchmarkTableI-8   	       3	     52500 ns/op
BenchmarkSweepGrid/serial-workers=1-8         	       3	  52304219 ns/op
BenchmarkSweepGrid/serial-workers=1-8         	       3	  51904219 ns/op
BenchmarkSweepGrid/parallel-workers=8-8       	       3	  12304219 ns/op
PASS
ok  	repro	12.3s
`

func TestParseFoldsCountsAndStripsSuffix(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(f.Benchmarks), f.Benchmarks)
	}
	// The GOMAXPROCS suffix is stripped, the sub-benchmark path kept.
	e, ok := f.Benchmarks["BenchmarkTableI"]
	if !ok {
		t.Fatalf("BenchmarkTableI missing (suffix not stripped?): %+v", f.Benchmarks)
	}
	if e.NsPerOp != 51000 || e.Runs != 3 {
		t.Errorf("TableI = %+v, want min 51000 over 3 runs", e)
	}
	s, ok := f.Benchmarks["BenchmarkSweepGrid/serial-workers=1"]
	if !ok || s.NsPerOp != 51904219 || s.Runs != 2 {
		t.Errorf("sub-benchmark = %+v ok=%v, want min 51904219 over 2 runs", s, ok)
	}
}

func snapshot(ns map[string]float64) File {
	f := File{Benchmarks: map[string]Entry{}}
	for name, v := range ns {
		f.Benchmarks[name] = Entry{NsPerOp: v, Runs: 3}
	}
	return f
}

func TestGate(t *testing.T) {
	base := snapshot(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})

	// Within threshold (and unrelated new benchmarks): pass, with the
	// new benches listed deterministically (sorted) and counted so a
	// stale baseline is loud, never silently narrower.
	var buf bytes.Buffer
	cur := snapshot(map[string]float64{"BenchmarkA": 120, "BenchmarkB": 190, "BenchmarkNew": 5, "BenchmarkAlso": 7})
	if err := Gate(&buf, base, cur, 25, 0, 0, 0); err != nil {
		t.Errorf("within-threshold gate failed: %v", err)
	}
	out := buf.String()
	also := strings.Index(out, "BenchmarkAlso: new benchmark")
	fresh := strings.Index(out, "BenchmarkNew: new benchmark")
	if also < 0 || fresh < 0 || also > fresh {
		t.Errorf("new benchmarks not reported in sorted order:\n%s", out)
	}
	if !strings.Contains(out, "2 new benchmark(s) are not gated") {
		t.Errorf("new-benchmark count missing:\n%s", out)
	}

	// Beyond threshold: fail, naming the offender.
	cur = snapshot(map[string]float64{"BenchmarkA": 126, "BenchmarkB": 190})
	err := Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkA") {
		t.Errorf("regression gate error = %v, want BenchmarkA named", err)
	}

	// The same regression under the noise floor is reported, not gated
	// (microbenchmarks are noise-dominated at low -benchtime)...
	buf.Reset()
	if err := Gate(&buf, base, cur, 25, 150, 0, 0); err != nil {
		t.Errorf("under-floor regression failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "under the 150 ns gate floor") {
		t.Errorf("floor skip not reported:\n%s", buf.String())
	}
	// ...but a benchmark above the floor still gates.
	cur = snapshot(map[string]float64{"BenchmarkA": 100, "BenchmarkB": 300})
	if err := Gate(&bytes.Buffer{}, base, cur, 25, 150, 0, 0); err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Errorf("above-floor regression error = %v, want BenchmarkB named", err)
	}

	// A benchmark vanishing from the current run fails the gate.
	cur = snapshot(map[string]float64{"BenchmarkA": 100})
	err = Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Errorf("missing-benchmark gate error = %v, want BenchmarkB named", err)
	}
}

func withMem(ns float64, b, a int64) Entry {
	return Entry{NsPerOp: ns, BPerOp: &b, AllocsPerOp: &a, Runs: 3}
}

func TestParseMemColumns(t *testing.T) {
	const out = `BenchmarkMem-8   	     100	   8093112 ns/op	  244196 B/op	    2329 allocs/op
BenchmarkMem-8   	     100	   8378464 ns/op	  243863 B/op	    2328 allocs/op
BenchmarkPlain-8 	     100	      1234 ns/op
`
	f, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	m := f.Benchmarks["BenchmarkMem"]
	if m.BPerOp == nil || *m.BPerOp != 243863 || m.AllocsPerOp == nil || *m.AllocsPerOp != 2328 {
		t.Errorf("memory columns not folded to their minima: %+v", m)
	}
	p := f.Benchmarks["BenchmarkPlain"]
	if p.BPerOp != nil || p.AllocsPerOp != nil {
		t.Errorf("benchmark without -benchmem got memory stats: %+v", p)
	}
	// Round trip: a measured zero stays distinct from absent.
	zero := withMem(10, 0, 0)
	data, err := json.Marshal(File{Benchmarks: map[string]Entry{"BenchmarkZ": zero}})
	if err != nil {
		t.Fatal(err)
	}
	var back File
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	z := back.Benchmarks["BenchmarkZ"]
	if z.BPerOp == nil || *z.BPerOp != 0 || z.AllocsPerOp == nil || *z.AllocsPerOp != 0 {
		t.Errorf("measured zero did not survive the JSON round trip: %+v", z)
	}
}

func TestGateMemoryMetrics(t *testing.T) {
	mem := func(entries map[string]Entry) File { return File{Benchmarks: entries} }

	// Within threshold: passes.
	base := mem(map[string]Entry{"BenchmarkA": withMem(100, 1000, 50)})
	cur := mem(map[string]Entry{"BenchmarkA": withMem(100, 1100, 55)})
	if err := Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0); err != nil {
		t.Errorf("within-threshold memory gate failed: %v", err)
	}

	// B/op beyond threshold: fails naming the metric.
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 2000, 50)})
	err := Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Errorf("B/op regression error = %v, want B/op named", err)
	}

	// allocs/op beyond threshold: fails.
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 1000, 80)})
	err = Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("allocs/op regression error = %v, want allocs/op named", err)
	}

	// A zero baseline is an allocation-freeness claim: one allocation
	// fails even though the percentage is undefined and a floor is set.
	base = mem(map[string]Entry{"BenchmarkA": withMem(100, 0, 0)})
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 16, 1)})
	err = Gate(&bytes.Buffer{}, base, cur, 25, 0, 1024, 20)
	if err == nil || !strings.Contains(err.Error(), "allocation-free baseline") {
		t.Errorf("zero-baseline gate error = %v, want allocation-free violation", err)
	}
	// And a still-zero current passes it.
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 0, 0)})
	if err := Gate(&bytes.Buffer{}, base, cur, 25, 0, 1024, 20); err != nil {
		t.Errorf("zero-vs-zero gate failed: %v", err)
	}

	// Floors mute small positive footprints but not the ns gate.
	base = mem(map[string]Entry{"BenchmarkA": withMem(100, 512, 10)})
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 1024, 19)})
	var buf bytes.Buffer
	if err := Gate(&buf, base, cur, 25, 0, 1024, 20); err != nil {
		t.Errorf("under-floor memory regression failed the gate: %v", err)
	}
	if !strings.Contains(buf.String(), "gate floor") {
		t.Errorf("floor skip not reported:\n%s", buf.String())
	}

	// A baseline with memory stats gates their presence: a current run
	// without -benchmem must fail, not shrink coverage silently.
	cur = mem(map[string]Entry{"BenchmarkA": {NsPerOp: 100, Runs: 3}})
	err = Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0)
	if err == nil || !strings.Contains(err.Error(), "-benchmem") {
		t.Errorf("missing-memstats gate error = %v, want -benchmem hint", err)
	}

	// The reverse (current has stats, baseline does not) stays a pass:
	// refreshing the baseline is how the new coverage lands.
	base = mem(map[string]Entry{"BenchmarkA": {NsPerOp: 100, Runs: 3}})
	cur = mem(map[string]Entry{"BenchmarkA": withMem(100, 99999, 9999)})
	if err := Gate(&bytes.Buffer{}, base, cur, 25, 0, 0, 0); err != nil {
		t.Errorf("baseline without memory stats gated them: %v", err)
	}
}

// TestEndToEnd drives the CLI: convert sample output to JSON, then
// gate a run against the snapshot it just wrote (self vs self passes).
func TestEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	out := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(in, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if err := run([]string{"-in", in, "-out", out, "-note", "test snapshot"}, &stdout, &stderr); err != nil {
		t.Fatalf("convert: %v\n%s", err, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, data)
	}
	if f.Note != "test snapshot" || len(f.Benchmarks) != 3 {
		t.Errorf("snapshot = %+v, want note and 3 benchmarks", f)
	}

	stdout.Reset()
	if err := run([]string{"-in", in, "-baseline", out}, &stdout, &stderr); err != nil {
		t.Fatalf("self-gate: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate ok") {
		t.Errorf("gate output missing verdict:\n%s", stdout.String())
	}
}

func TestCLIErrors(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(in, []byte("no benchmarks here\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	real := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(real, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no-action", []string{"-in", in}, "nothing to do"},
		{"empty-input", []string{"-in", in, "-out", filepath.Join(dir, "x.json")}, "no benchmark results"},
		{"missing-input", []string{"-in", "/does/not/exist", "-out", "x.json"}, "no such file"},
		{"missing-baseline", []string{"-in", real, "-baseline", "/does/not/exist"}, "no such file"},
		{"stray-args", []string{"extra"}, "unexpected arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			err := run(c.args, &stdout, &stderr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("run(%v) = %v, want mention of %q", c.args, err, c.want)
			}
		})
	}
}
