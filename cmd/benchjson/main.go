// Command benchjson converts `go test -bench` output into a stable
// JSON snapshot (benchstat-style ns/op per benchmark) and gates
// regressions against a committed baseline — the perf trajectory of
// the repo, recorded per commit by CI.
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 ./... | benchjson -out BENCH_$(git rev-parse HEAD).json
//	benchjson -in bench.txt -baseline BENCH_baseline.json -max-regression 25
//
// Conversion keeps the minimum ns/op across -count repetitions (the
// least-noise estimate: the fastest observed run is the one with the
// least interference) and strips the GOMAXPROCS suffix from benchmark
// names so snapshots compare across machines. Runs taken with
// -benchmem also record B/op and allocs/op (minimum across
// repetitions); a snapshot distinguishes "0 B/op" from "not measured".
//
// The gate fails (non-zero exit) when any baseline benchmark regresses
// by more than -max-regression percent, or disappeared from the
// current run — a deleted benchmark must update the baseline, never
// silently shrink the gate's coverage. Memory metrics gate the same
// way wherever the baseline recorded them, with one stricter rule: a
// baseline of 0 B/op or 0 allocs/op is an allocation-freeness claim,
// and ANY current allocation fails regardless of percentage. New
// benchmarks pass and are reported, so the baseline can be refreshed
// deliberately.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark's snapshot.
type Entry struct {
	// NsPerOp is the minimum ns/op observed across repetitions.
	NsPerOp float64 `json:"ns_per_op"`

	// BPerOp and AllocsPerOp are the minimum bytes and heap
	// allocations per op across repetitions, present only when the run
	// was taken with -benchmem. Pointers keep a measured zero (a
	// genuinely allocation-free benchmark, which the gate defends
	// strictly) distinct from "not measured".
	BPerOp      *int64 `json:"b_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`

	// Runs is how many repetitions were observed.
	Runs int `json:"runs"`
}

// File is the snapshot format (BENCH_<sha>.json / BENCH_baseline.json).
type File struct {
	// Note is free-form provenance ("committed baseline", a commit id).
	Note string `json:"note,omitempty"`

	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its snapshot. encoding/json emits keys sorted, so the file is
	// byte-stable for one input.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "-", `benchmark output to read ("-" = stdin)`)
		out      = fs.String("out", "", "write the JSON snapshot here")
		baseline = fs.String("baseline", "", "gate against this committed snapshot")
		maxReg   = fs.Float64("max-regression", 25, "fail when a benchmark slows down by more than this percent vs the baseline")
		minNs    = fs.Float64("min-ns", 0, "gate only benchmarks whose baseline is at least this many ns/op (microbenchmarks are noise-dominated at low -benchtime)")
		minB     = fs.Float64("min-b", 0, "gate B/op only when the baseline is at least this many bytes (pool hit rates make small footprints jittery); a zero baseline always gates")
		minAlloc = fs.Float64("min-allocs", 0, "gate allocs/op only when the baseline is at least this many allocations; a zero baseline always gates")
		note     = fs.String("note", "", "provenance note stored in the snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *out == "" && *baseline == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -baseline")
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	cur, err := Parse(r)
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in %s", *in)
	}
	cur.Note = *note

	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(cur.Benchmarks), *out)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing %s: %w", *baseline, err)
		}
		if err := Gate(stdout, base, cur, *maxReg, *minNs, *minB, *minAlloc); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "gate ok: no benchmark regressed more than %g%% vs %s\n", *maxReg, *baseline)
	}
	return nil
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkFig7-8   	       3	 120531431 ns/op
//	BenchmarkSweepGrid/serial-workers=1-8         	       3	  52304219 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// Parse reads `go test -bench` output into a snapshot, folding -count
// repetitions of one benchmark into the per-metric minimum (-benchmem
// memory columns included when present).
func Parse(r io.Reader) (File, error) {
	out := File{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return File{}, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		e, seen := out.Benchmarks[m[1]]
		if !seen || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		if m[3] != "" {
			b, err := strconv.ParseInt(m[3], 10, 64)
			if err != nil {
				return File{}, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			a, err := strconv.ParseInt(m[4], 10, 64)
			if err != nil {
				return File{}, fmt.Errorf("line %q: %w", sc.Text(), err)
			}
			if e.BPerOp == nil || b < *e.BPerOp {
				e.BPerOp = &b
			}
			if e.AllocsPerOp == nil || a < *e.AllocsPerOp {
				e.AllocsPerOp = &a
			}
		}
		e.Runs++
		out.Benchmarks[m[1]] = e
	}
	return out, sc.Err()
}

// gateMem compares one memory metric (B/op or allocs/op) of one
// benchmark. A zero baseline is an allocation-freeness claim: any
// current value above it fails outright, floor and percentage
// notwithstanding (a percentage over zero is undefined anyway). A
// positive baseline under the floor is reported but not gated;
// otherwise the shared percentage threshold applies.
func gateMem(w io.Writer, name, unit string, base, cur int64, floor, maxPercent float64) (failure string) {
	if base == 0 {
		if cur > 0 {
			return fmt.Sprintf("%s: %d %s vs an allocation-free baseline", name, cur, unit)
		}
		fmt.Fprintf(w, "%s: 0 %s, allocation-free as the baseline claims\n", name, unit)
		return ""
	}
	change := (float64(cur)/float64(base) - 1) * 100
	if float64(base) < floor {
		fmt.Fprintf(w, "%s: %d %s vs %d baseline (%+.1f%%, under the %g %s gate floor)\n",
			name, cur, unit, base, change, floor, unit)
		return ""
	}
	fmt.Fprintf(w, "%s: %d %s vs %d baseline (%+.1f%%)\n", name, cur, unit, base, change)
	if change > maxPercent {
		return fmt.Sprintf("%s: %d %s vs %d baseline (%+.1f%% > %g%%)",
			name, cur, unit, base, change, maxPercent)
	}
	return ""
}

// Gate compares a current snapshot against the baseline and returns
// an error naming every benchmark that regressed beyond maxPercent or
// vanished. Benchmarks whose baseline is under minNs are reported but
// not gated — at CI's low -benchtime, microsecond-scale results are
// noise-dominated and would make the gate cry wolf. Memory metrics
// gate wherever the baseline recorded them (see gateMem), with minB
// and minAllocs as their noise floors; a current run without
// -benchmem data fails rather than silently shrinking that coverage.
// New benchmarks are reported on w but never fail the gate.
func Gate(w io.Writer, base, cur File, maxPercent, minNs, minB, minAllocs float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	fail := func(msg string) {
		if msg != "" {
			failures = append(failures, msg)
		}
	}
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			fail(fmt.Sprintf("%s: missing from the current run (update the baseline if it was removed deliberately)", name))
			continue
		}
		change := (c.NsPerOp/b.NsPerOp - 1) * 100
		if b.NsPerOp < minNs {
			fmt.Fprintf(w, "%s: %.0f ns/op vs %.0f baseline (%+.1f%%, under the %g ns gate floor)\n",
				name, c.NsPerOp, b.NsPerOp, change, minNs)
		} else {
			fmt.Fprintf(w, "%s: %.0f ns/op vs %.0f baseline (%+.1f%%)\n", name, c.NsPerOp, b.NsPerOp, change)
			if change > maxPercent {
				fail(fmt.Sprintf("%s: %.0f ns/op vs %.0f baseline (%+.1f%% > %g%%)",
					name, c.NsPerOp, b.NsPerOp, change, maxPercent))
			}
		}
		if b.BPerOp != nil {
			if c.BPerOp == nil {
				fail(fmt.Sprintf("%s: B/op missing from the current run (re-run with -benchmem)", name))
			} else {
				fail(gateMem(w, name, "B/op", *b.BPerOp, *c.BPerOp, minB, maxPercent))
			}
		}
		if b.AllocsPerOp != nil {
			if c.AllocsPerOp == nil {
				fail(fmt.Sprintf("%s: allocs/op missing from the current run (re-run with -benchmem)", name))
			} else {
				fail(gateMem(w, name, "allocs/op", *b.AllocsPerOp, *c.AllocsPerOp, minAllocs, maxPercent))
			}
		}
	}
	// New benchmarks are listed deterministically (sorted) as
	// informational lines — they never gate, but silently ignoring
	// them would let the baseline's coverage rot as benches are added.
	var fresh []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "%s: new benchmark (%.0f ns/op), not in the baseline\n",
			name, cur.Benchmarks[name].NsPerOp)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(w, "%d new benchmark(s) are not gated — refresh the baseline to cover them\n", len(fresh))
	}
	if len(failures) > 0 {
		msg := "performance regressions vs baseline:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
