// Command benchjson converts `go test -bench` output into a stable
// JSON snapshot (benchstat-style ns/op per benchmark) and gates
// regressions against a committed baseline — the perf trajectory of
// the repo, recorded per commit by CI.
//
//	go test -run '^$' -bench . -benchtime 3x -count 3 ./... | benchjson -out BENCH_$(git rev-parse HEAD).json
//	benchjson -in bench.txt -baseline BENCH_baseline.json -max-regression 25
//
// Conversion keeps the minimum ns/op across -count repetitions (the
// least-noise estimate: the fastest observed run is the one with the
// least interference) and strips the GOMAXPROCS suffix from benchmark
// names so snapshots compare across machines.
//
// The gate fails (non-zero exit) when any baseline benchmark regresses
// by more than -max-regression percent, or disappeared from the
// current run — a deleted benchmark must update the baseline, never
// silently shrink the gate's coverage. New benchmarks pass and are
// reported, so the baseline can be refreshed deliberately.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark's snapshot.
type Entry struct {
	// NsPerOp is the minimum ns/op observed across repetitions.
	NsPerOp float64 `json:"ns_per_op"`

	// Runs is how many repetitions were observed.
	Runs int `json:"runs"`
}

// File is the snapshot format (BENCH_<sha>.json / BENCH_baseline.json).
type File struct {
	// Note is free-form provenance ("committed baseline", a commit id).
	Note string `json:"note,omitempty"`

	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to
	// its snapshot. encoding/json emits keys sorted, so the file is
	// byte-stable for one input.
	Benchmarks map[string]Entry `json:"benchmarks"`
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "-", `benchmark output to read ("-" = stdin)`)
		out      = fs.String("out", "", "write the JSON snapshot here")
		baseline = fs.String("baseline", "", "gate against this committed snapshot")
		maxReg   = fs.Float64("max-regression", 25, "fail when a benchmark slows down by more than this percent vs the baseline")
		minNs    = fs.Float64("min-ns", 0, "gate only benchmarks whose baseline is at least this many ns/op (microbenchmarks are noise-dominated at low -benchtime)")
		note     = fs.String("note", "", "provenance note stored in the snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *out == "" && *baseline == "" {
		return fmt.Errorf("nothing to do: pass -out and/or -baseline")
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	cur, err := Parse(r)
	if err != nil {
		return err
	}
	if len(cur.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results in %s", *in)
	}
	cur.Note = *note

	if *out != "" {
		data, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(cur.Benchmarks), *out)
	}

	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			return err
		}
		var base File
		if err := json.Unmarshal(data, &base); err != nil {
			return fmt.Errorf("parsing %s: %w", *baseline, err)
		}
		if err := Gate(stdout, base, cur, *maxReg, *minNs); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "gate ok: no benchmark regressed more than %g%% vs %s\n", *maxReg, *baseline)
	}
	return nil
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkFig7-8   	       3	 120531431 ns/op
//	BenchmarkSweepGrid/serial-workers=1-8         	       3	  52304219 ns/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// Parse reads `go test -bench` output into a snapshot, folding -count
// repetitions of one benchmark into their minimum ns/op.
func Parse(r io.Reader) (File, error) {
	out := File{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return File{}, fmt.Errorf("line %q: %w", sc.Text(), err)
		}
		e, seen := out.Benchmarks[m[1]]
		if !seen || ns < e.NsPerOp {
			e.NsPerOp = ns
		}
		e.Runs++
		out.Benchmarks[m[1]] = e
	}
	return out, sc.Err()
}

// Gate compares a current snapshot against the baseline and returns
// an error naming every benchmark that regressed beyond maxPercent or
// vanished. Benchmarks whose baseline is under minNs are reported but
// not gated — at CI's low -benchtime, microsecond-scale results are
// noise-dominated and would make the gate cry wolf. New benchmarks
// are reported on w but never fail the gate.
func Gate(w io.Writer, base, cur File, maxPercent, minNs float64) error {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := cur.Benchmarks[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: missing from the current run (update the baseline if it was removed deliberately)", name))
			continue
		}
		change := (c.NsPerOp/b.NsPerOp - 1) * 100
		if b.NsPerOp < minNs {
			fmt.Fprintf(w, "%s: %.0f ns/op vs %.0f baseline (%+.1f%%, under the %g ns gate floor)\n",
				name, c.NsPerOp, b.NsPerOp, change, minNs)
			continue
		}
		fmt.Fprintf(w, "%s: %.0f ns/op vs %.0f baseline (%+.1f%%)\n", name, c.NsPerOp, b.NsPerOp, change)
		if change > maxPercent {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs %.0f baseline (%+.1f%% > %g%%)",
				name, c.NsPerOp, b.NsPerOp, change, maxPercent))
		}
	}
	// New benchmarks are listed deterministically (sorted) as
	// informational lines — they never gate, but silently ignoring
	// them would let the baseline's coverage rot as benches are added.
	var fresh []string
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; !ok {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		fmt.Fprintf(w, "%s: new benchmark (%.0f ns/op), not in the baseline\n",
			name, cur.Benchmarks[name].NsPerOp)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(w, "%d new benchmark(s) are not gated — refresh the baseline to cover them\n", len(fresh))
	}
	if len(failures) > 0 {
		msg := "performance regressions vs baseline:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}
