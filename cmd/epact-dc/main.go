// Command epact-dc runs the week-long data-center simulation for a
// single chosen policy and prints the per-slot series.
//
// Usage:
//
//	epact-dc [-policy epact|coat|coat-opt|ffd] [-vms 600] [-days 7]
//	         [-seed 2018] [-arima=true] [-static 15]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/alloc"
	"repro/internal/dcsim"
	"repro/internal/forecast"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/units"
)

func main() {
	var (
		policy  = flag.String("policy", "epact", "allocation policy: epact, coat, coat-opt or ffd")
		vms     = flag.Int("vms", 600, "number of VMs")
		days    = flag.Int("days", 7, "evaluated days (after 7 history days)")
		seed    = flag.Int64("seed", 2018, "trace seed")
		arima   = flag.Bool("arima", true, "ARIMA predictions (false = oracle)")
		static  = flag.Float64("static", 15, "per-server static power in W")
		verbose = flag.Bool("v", false, "print every slot")
	)
	flag.Parse()

	if err := run(*policy, *vms, *days, *seed, *arima, *static, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "epact-dc:", err)
		os.Exit(1)
	}
}

func run(policy string, vms, days int, seed int64, arima bool, static float64, verbose bool) error {
	model := power.NTCServer()
	model.Motherboard = units.Watts(static)
	spec := alloc.ServerSpec{
		Cores:         model.Cores,
		MemContainers: model.DRAM.Capacity.GB(),
		FMax:          model.FMax,
		FMin:          model.FMin,
	}

	var pol alloc.Policy
	switch policy {
	case "epact":
		pol = &alloc.EPACT{Model: model}
	case "coat":
		pol = alloc.NewCOAT(spec)
	case "coat-opt":
		pol = alloc.NewCOATOPT(spec, model.OptimalFrequency())
	case "ffd":
		pol = &alloc.FFD{}
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}

	tc := trace.DefaultConfig(seed)
	tc.VMs = vms
	tc.Days = 7 + days
	tc.BaseMin, tc.BaseMax, tc.DiurnalAmplitude = 35, 85, 28
	tr, err := trace.Generate(tc)
	if err != nil {
		return err
	}

	var pred forecast.Predictor
	if arima {
		pred = &forecast.ARIMA{Cfg: forecast.DefaultConfig()}
	}
	fmt.Fprintf(os.Stderr, "forecasting %d VMs x %d days...\n", vms, days)
	ps, err := dcsim.Predict(tr, pred, 7, days)
	if err != nil {
		return err
	}

	res, err := dcsim.Run(dcsim.Config{
		Trace:       tr,
		Predictions: ps,
		HistoryDays: 7,
		EvalDays:    days,
		Policy:      pol,
		Server:      model,
		Platform:    platform.NTCServer(),
		MaxServers:  600,
	})
	if err != nil {
		return err
	}

	fmt.Printf("policy=%s predictor=%s static=%.0fW\n", res.Policy, res.Predictor, static)
	fmt.Printf("total energy: %v over %d slots\n", res.TotalEnergy, len(res.Slots))
	fmt.Printf("violations: %d, mean active servers: %.1f (peak %d)\n",
		res.TotalViol, res.MeanActive, res.PeakActive)

	if verbose {
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "slot\tactive\tviol\tenergy (MJ)\tplanned GHz")
		for _, s := range res.Slots {
			fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\t%.2f\n",
				s.Slot, s.ActiveServers, s.Violations, s.Energy.MJ(), s.PlannedFreq.GHz())
		}
		tw.Flush()
	}
	return nil
}
