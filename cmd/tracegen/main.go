// Command tracegen emits a synthetic Google-cluster-style VM
// utilisation trace on stdout (or to -o), in either of the formats
// the sweep's trace-ingestion backends consume (see docs/TRACES.md):
//
//   - csv: the native long format (vm_id,class,sample,cpu_pct,mem_pct),
//     read back with the "csv:" backend;
//   - cluster: a cluster-style reading table (timestamp,vm_id,
//     cpu_util,mem_util with fractional units), read back with the
//     "cluster:" backend — useful for exercising the cluster adapter
//     without shipping a real dump.
//
// Usage:
//
//	tracegen [-vms 600] [-days 7] [-seed 1] [-format csv] [-o trace.csv] [-stats]
//	tracegen -vms 200 -days 3 -o week.csv
//	ntc-sweep -trace csv:week.csv -vms 200 -days 2 -history 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		vms    = flag.Int("vms", 600, "number of VMs")
		days   = flag.Int("days", 7, "days of trace (288 samples/day)")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "output format: csv (native) or cluster (reading table)")
		out    = flag.String("o", "", "output file (default stdout)")
		stats  = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	// Validate -format before os.Create: creating first would
	// truncate an existing trace file on a flag typo.
	var write func(*trace.Trace, io.Writer) error
	switch *format {
	case "csv":
		write = (*trace.Trace).WriteCSV
	case "cluster":
		write = (*trace.Trace).WriteClusterCSV
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown -format %q (known: csv, cluster)\n", *format)
		os.Exit(1)
	}

	cfg := trace.DefaultConfig(*seed)
	cfg.VMs = *vms
	cfg.Days = *days
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := write(tr, w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *stats {
		shares := tr.ClassShares()
		fmt.Fprintf(os.Stderr, "VMs: %d, samples: %d (%.0f h), slots: %d\n",
			len(tr.VMs), tr.Samples(), tr.Duration().Hours(), tr.Slots())
		fmt.Fprintf(os.Stderr, "class shares: low %.0f%%, mid %.0f%%, high %.0f%%\n",
			shares[0]*100, shares[1]*100, shares[2]*100)
		fmt.Fprintf(os.Stderr, "daily autocorrelation: %.2f\n", tr.DailyAutocorrelation())
		fmt.Fprintf(os.Stderr, "intra-group correlation: %.2f (cross: %.2f)\n",
			tr.MeanIntraGroupCorrelation(cfg.Groups), tr.MeanCrossGroupCorrelation(cfg.Groups))
	}
}
