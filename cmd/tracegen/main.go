// Command tracegen emits a synthetic Google-cluster-style VM
// utilisation trace as CSV on stdout (or to -o).
//
// Usage:
//
//	tracegen [-vms 600] [-days 7] [-seed 1] [-o trace.csv] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		vms   = flag.Int("vms", 600, "number of VMs")
		days  = flag.Int("days", 7, "days of trace (288 samples/day)")
		seed  = flag.Int64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		stats = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	cfg := trace.DefaultConfig(*seed)
	cfg.VMs = *vms
	cfg.Days = *days
	tr, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := tr.WriteCSV(w); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	if *stats {
		shares := tr.ClassShares()
		fmt.Fprintf(os.Stderr, "VMs: %d, samples: %d (%.0f h), slots: %d\n",
			len(tr.VMs), tr.Samples(), tr.Duration().Hours(), tr.Slots())
		fmt.Fprintf(os.Stderr, "class shares: low %.0f%%, mid %.0f%%, high %.0f%%\n",
			shares[0]*100, shares[1]*100, shares[2]*100)
		fmt.Fprintf(os.Stderr, "daily autocorrelation: %.2f\n", tr.DailyAutocorrelation())
		fmt.Fprintf(os.Stderr, "intra-group correlation: %.2f (cross: %.2f)\n",
			tr.MeanIntraGroupCorrelation(cfg.Groups), tr.MeanCrossGroupCorrelation(cfg.Groups))
	}
}
