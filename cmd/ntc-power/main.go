// Command ntc-power prints server- and data-center-level power curves
// for the NTC and conventional server models: the P(f) and P(f)/f
// sweeps behind Fig. 1 and the optimal operating points.
//
// Usage:
//
//	ntc-power [-model ntc|e5] [-servers 80] [-util 0.5]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/power"
)

func main() {
	var (
		model   = flag.String("model", "ntc", "server model: ntc or e5")
		servers = flag.Int("servers", 80, "pool size for the DC sweep")
		util    = flag.Float64("util", 0.5, "data-center utilisation rate (0..1)")
	)
	flag.Parse()

	var m *power.ServerModel
	switch *model {
	case "ntc":
		m = power.NTCServer()
	case "e5":
		m = power.IntelE5_2620()
	default:
		fmt.Fprintf(os.Stderr, "ntc-power: unknown model %q (want ntc or e5)\n", *model)
		os.Exit(2)
	}

	fmt.Printf("%s (%s)\n", m.Name, m.Tech.Name)
	fmt.Printf("optimal frequency (argmin P/f): %v\n\n", m.OptimalFrequency())

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "GHz\tV\tP idle (W)\tP cpu-bound (W)\tP/f (W/GHz)")
	for _, f := range m.DVFSLevels() {
		fmt.Fprintf(tw, "%.1f\t%.2f\t%.1f\t%.1f\t%.1f\n",
			f.GHz(), m.Tech.VoltageAt(f).V(), m.IdlePower(f).W(), m.CPUBoundPower(f).W(), m.PowerPerGHz(f))
	}
	tw.Flush()

	dc := &power.DataCenter{Servers: *servers, Model: m}
	fOpt, pOpt, err := dc.OptimalWorstCaseFrequency(*util)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntc-power:", err)
		os.Exit(1)
	}
	pMax, _, err := dc.WorstCasePower(*util, m.FMax, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ntc-power:", err)
		os.Exit(1)
	}
	fmt.Printf("\nDC of %d servers at %.0f%% utilisation:\n", *servers, *util*100)
	fmt.Printf("  optimal: %v at %v\n", pOpt, fOpt)
	fmt.Printf("  consolidation at FMax: %v (%.0f%% more)\n",
		pMax, 100*(pMax.W()/pOpt.W()-1))
}
