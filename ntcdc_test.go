package ntcdc

import (
	"math"
	"testing"
)

func TestFacadeServerModels(t *testing.T) {
	ntc := NTCServerPower()
	if got := ntc.OptimalFrequency().GHz(); got < 1.8 || got > 2.0 {
		t.Errorf("NTC optimum = %.1f GHz, want ≈1.9", got)
	}
	e5 := ConventionalServerPower()
	if e5.OptimalFrequency() != e5.FMax {
		t.Errorf("conventional optimum = %v, want FMax", e5.OptimalFrequency())
	}
}

func TestFacadeFrequencyHelpers(t *testing.T) {
	if GHz(1.9).MHz() != 1900 {
		t.Error("GHz helper broken")
	}
	if MHz(2400).GHz() != 2.4 {
		t.Error("MHz helper broken")
	}
}

func TestFacadeQoS(t *testing.T) {
	ntc := NTCPlatform()
	f, err := MinQoSFrequency(ntc, LowMem)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.GHz()-1.2) > 0.05 {
		t.Errorf("low-mem QoS floor = %v, want 1.2 GHz", f)
	}
	if lim := QoSLimit(HighMem); math.Abs(lim-6.909) > 0.07 {
		t.Errorf("high-mem QoS limit = %.3f, want 6.909", lim)
	}
}

func TestFacadePlatforms(t *testing.T) {
	if ThunderXPlatform().Cores != 48 {
		t.Error("ThunderX should have 48 cores")
	}
	if X86Platform().FNominal.GHz() != 2.66 {
		t.Error("x86 nominal should be 2.66 GHz")
	}
	if !FDSOI28().InNearThresholdRegion(GHz(0.3)) {
		t.Error("FD-SOI at 0.3 GHz should be near threshold")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	// A miniature end-to-end run through the public API only.
	cfg := DefaultTraceConfig(5)
	cfg.VMs = 40
	cfg.Days = 8
	tr, err := GenerateTrace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Predict(tr, nil, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.CPU) != 40 {
		t.Fatalf("predictions cover %d VMs, want 40", len(ps.CPU))
	}

	wc := DefaultWeekConfig()
	wc.VMs = 40
	wc.EvalDays = 1
	wc.UseARIMA = false
	week, err := RunWeek(wc)
	if err != nil {
		t.Fatal(err)
	}
	if week.TotalEnergyMJ["EPACT"] <= 0 {
		t.Error("EPACT consumed no energy")
	}
	if week.TotalEnergyMJ["COAT"] <= week.TotalEnergyMJ["EPACT"] {
		t.Error("COAT should consume more than EPACT on NTC servers")
	}
}

func TestFacadePolicies(t *testing.T) {
	m := NTCServerPower()
	policies := []AllocationPolicy{
		NewEPACT(m), NewCOAT(m), NewCOATOPT(m),
		NewVerma(), NewFFD(), NewLoadBalance(8),
	}
	for _, p := range policies {
		if p.Name() == "" {
			t.Error("policy with empty name")
		}
	}
	if NewARIMA().Name() == "" {
		t.Error("predictor with empty name")
	}
}

func TestFacadeBodyBias(t *testing.T) {
	bt, err := WithBodyBias(FDSOI28(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if bt.VthShift() >= 0 {
		t.Error("FBB should lower the threshold")
	}
	if _, err := WithBodyBias(FDSOI28(), 3.0); err == nil {
		t.Error("out-of-range bias accepted")
	}
}

func TestFacadePolicyZoo(t *testing.T) {
	cfg := DefaultWeekConfig()
	cfg.VMs = 40
	cfg.EvalDays = 1
	cfg.UseARIMA = false
	rows, err := PolicyZoo(cfg, DefaultTransitions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("zoo rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.EnergyMJ <= 0 {
			t.Errorf("%s: no energy recorded", r.Policy)
		}
	}
}

func TestFacadePowerBreakdown(t *testing.T) {
	m := NTCServerPower()
	op := OperatingPoint{Freq: GHz(1.9), BusyCores: 8}
	b := m.PowerBreakdown(op)
	if diff := b.Total().W() - m.Power(op).W(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("breakdown total %.3f != power %.3f", b.Total().W(), m.Power(op).W())
	}
	if m.EnergyProportionalityScore() <= ConventionalServerPower().EnergyProportionalityScore() {
		t.Error("NTC proportionality should beat conventional")
	}
}

func TestFacadeRunSweep(t *testing.T) {
	res, err := RunSweep(SweepGrid{
		Policies:   []string{"EPACT", "COAT"},
		VMs:        []int{40},
		MaxServers: []int{40},
		EvalDays:   1,
		Predictors: []string{"oracle"},
	}, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Failed(); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	if res.Runs[0].Scenario.Policy != "EPACT" || res.Runs[0].TotalEnergyMJ <= 0 {
		t.Errorf("unexpected first run: %+v", res.Runs[0])
	}
	if len(SweepPolicies()) != 6 || len(SweepPredictors()) != 4 {
		t.Errorf("registries = %v / %v", SweepPolicies(), SweepPredictors())
	}
}
