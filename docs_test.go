package ntcdc

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches inline markdown links [text](target). Reference
// links and autolinks are out of scope — the repo's docs use the
// inline form.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks walks every tracked markdown file and checks
// that relative links resolve to files in the repository, so docs
// cannot silently rot as files move. CI runs this in the docs job.
func TestMarkdownLinks(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS internals and generated output directories.
			if d.Name() == ".git" || d.Name() == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.EqualFold(filepath.Ext(path), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			// External and intra-document links are not checked here.
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			// Drop anchors and URL-escaped spaces in file targets.
			if i := strings.Index(target, "#"); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Error("no relative links checked — the docs should cross-link (README ↔ docs/)")
	}
}

// TestREADMELinksDesignDocs pins the satellite requirement that the
// architecture and trace documents are reachable from the README.
func TestREADMELinksDesignDocs(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/ARCHITECTURE.md", "docs/TRACES.md", "docs/TOPOLOGY.md", "docs/DISTRIBUTED.md", "docs/SERVING.md", "docs/CARBON.md"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
}

// TestREADMEDocumentsRebalanceFlag pins the `-rebalance` flag row:
// the CLI's rebalance axis must stay documented in the README flag
// table with its spec grammar.
func TestREADMEDocumentsRebalanceFlag(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "`-rebalance`") {
		t.Error("README.md flag table does not document -rebalance")
	}
	if !strings.Contains(string(data), "epoch:N[@dispatcher]") {
		t.Error("README.md does not document the rebalance spec grammar epoch:N[@dispatcher]")
	}
}

// TestDocsPinCrashResume pins the crash-recovery documentation: the
// checkpoint/resume journal, blob input shipping, and worker-churn
// behaviour are user-facing contracts (flags + wire protocol), and
// both the README flag table and DISTRIBUTED.md's sections must
// survive future edits.
func TestDocsPinCrashResume(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"`-checkpoint-dir DIR`",
		"`-resume DIR`",
		"`-serve-blobs`",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md flag table lost the row %q", want)
		}
	}
	dist, err := os.ReadFile("docs/DISTRIBUTED.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Checkpoint / resume",
		"## Input shipping (blobs)",
		"## Worker churn",
		"/v1/release",
		"/v1/blob",
		"scripts/resume_check.sh",
	} {
		if !strings.Contains(string(dist), want) {
			t.Errorf("docs/DISTRIBUTED.md lost the crash-resume marker %q", want)
		}
	}
}

// TestDocsPinServing pins the live-service documentation: the
// ntc-serve endpoints, the gauge names, the what-if hermeticity
// gates and the counter-reconciliation invariant are user-facing
// contracts (HTTP surface + exposition bytes), and both the README's
// ntc-serve section and SERVING.md's sections must survive future
// edits.
func TestDocsPinServing(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## cmd/ntc-serve",
		"`-tick`",
		"`-whatif-max`, `-whatif-vms`, `-whatif-workers`",
		"`-max-sessions`",
		"/v1/whatif",
		"/v1/sessions",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md lost the ntc-serve marker %q", want)
		}
	}
	serving, err := os.ReadFile("docs/SERVING.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Endpoints",
		"## Sessions",
		"## Live ingestion",
		"## Gauge reference",
		"## What-if queries",
		"### Mid-replay forks",
		"## Determinism and concurrency guarantees",
		"/v1/whatif",
		"/v1/step",
		"/v1/sessions",
		"ntc_fleet_energy_mj",
		"ntc_ingest",
		"ntc_whatif_forks",
		"scenarios == executed + cache_hits",
		"scripts/serve_check.sh",
		"FuzzWhatIfDecode",
	} {
		if !strings.Contains(string(serving), want) {
			t.Errorf("docs/SERVING.md lost the marker %q", want)
		}
	}
}

// TestDocsPinCarbon pins the carbon-layer documentation: the
// power-model axis, the per-DC carbon fields, the carbon-greedy
// dispatcher and the v4 schema bump are user-facing contracts (flags,
// fleet JSON, result columns, gauge names), and CARBON.md, the
// README's flag rows and TOPOLOGY.md's fleet tables must survive
// future edits.
func TestDocsPinCarbon(t *testing.T) {
	carbon, err := os.ReadFile("docs/CARBON.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## Power models (`power-model` axis)",
		"## Per-DC carbon accounting",
		"## Carbon-optimizing dispatch",
		"## Schema v4 and caching",
		"12/32/75/102% of TDP",
		"0.38 W/GB",
		"`grid_intensity`",
		"`embodied_kg_per_vcpu`",
		"`operational_gco2`",
		"`ntc_carbon_*`",
		"`carbon-greedy`",
		"`triad-carbon`",
		"`sweep-result-v4`",
		"TestPowerModelAxisChangesPricingNotPlacement",
		"TestStaleV3EntriesNeverAnswerV4",
	} {
		if !strings.Contains(string(carbon), want) {
			t.Errorf("docs/CARBON.md lost the marker %q", want)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"`-power-model`",
		"## Carbon-aware modeling",
		"docs/CARBON.md",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md lost the carbon marker %q", want)
		}
	}
	topo, err := os.ReadFile("docs/TOPOLOGY.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"`carbon-greedy`",
		"`triad-carbon`",
		"`grid_intensity`",
	} {
		if !strings.Contains(string(topo), want) {
			t.Errorf("docs/TOPOLOGY.md lost the carbon marker %q", want)
		}
	}
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arch), "`sweep-result-v4`") {
		t.Error("docs/ARCHITECTURE.md no longer documents the v4 schema version")
	}
}

// TestDocsPinHotLoopDesign pins the hot-loop documentation: the
// simulator's zero-alloc slot loop is a load-bearing perf contract
// (TestSlotLoopAllocationFree + the strict zero-alloc bench gate),
// and both ARCHITECTURE.md's design section and the README's perf
// claim must survive future edits.
func TestDocsPinHotLoopDesign(t *testing.T) {
	arch, err := os.ReadFile("docs/ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"## The hot loop",
		"TestSlotLoopAllocationFree",
		"grid[LevelIndex(f)] == ClampFrequency(f)",
		"planArena",
	} {
		if !strings.Contains(string(arch), want) {
			t.Errorf("docs/ARCHITECTURE.md lost the hot-loop design marker %q", want)
		}
	}
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"TestSlotLoopAllocationFree",
		"allocs/op",
	} {
		if !strings.Contains(string(readme), want) {
			t.Errorf("README.md lost the hot-loop perf marker %q", want)
		}
	}
}
