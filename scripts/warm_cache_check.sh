#!/usr/bin/env sh
# End-to-end warm-cache gate (CI `golden` job): run the same grid
# twice against one result store and prove the second run executed
# nothing — 0 misses, 0 rows written, no trace ingested — while
# emitting byte-identical CSV. Then prove the distributed path
# (`-dist local:4`) reuses the same store without leasing a single
# unit and still matches the bytes.
#
# The expected hit/unit counts are derived from the first run's own
# "running N scenarios" banner, never hard-coded, so the gate stays
# loud when the default grid grows another axis instead of silently
# matching stale literals.
set -eu

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/ntc-sweep" ./cmd/ntc-sweep

run_sweep() {
    # $1 = csv output, $2 = stderr log, rest = extra flags
    csv=$1; log=$2; shift 2
    "$tmp/ntc-sweep" \
        -policies EPACT,COAT -vms 24 -max-servers 24 \
        -days 1 -history 1 -predictors oracle \
        -cache rw -cache-dir "$tmp/cache" \
        -csv "$csv" "$@" 2> "$log"
}

run_sweep "$tmp/a.csv" "$tmp/a.log"

# The scenario count every later assertion scales from.
n=$(sed -n 's/^running \([0-9][0-9]*\) scenarios\.\.\..*/\1/p' "$tmp/a.log")
if [ -z "$n" ] || [ "$n" -le 0 ]; then
    echo "warm-cache gate FAILED: could not derive the scenario count from the sweep banner:" >&2
    cat "$tmp/a.log" >&2
    exit 1
fi
# The cold run must have written every row it executed.
grep -q "cache: 0 hits, $n misses, $n rows written" "$tmp/a.log"

run_sweep "$tmp/b.csv" "$tmp/b.log"

cmp "$tmp/a.csv" "$tmp/b.csv"
grep -q "cache: $n hits, 0 misses, 0 rows written" "$tmp/b.log"
grep -q "0 traces built for 0 requests" "$tmp/b.log"

run_sweep "$tmp/c.csv" "$tmp/c.log" -dist local:4
cmp "$tmp/a.csv" "$tmp/c.csv"
grep -q "dist: $n units ($n cache hits), 0 leases to 0 workers" "$tmp/c.log"

echo "warm-cache gate ok: second run executed 0 of $n scenarios, bytes identical (engine and -dist local:4)"
