#!/usr/bin/env sh
# End-to-end crash-resume gate (CI `chaos` job): a real coordinator
# process (-serve) journaling to -checkpoint-dir is SIGKILLed mid-grid
# — no shutdown hook, no flush, exactly the failure the journal exists
# for — then restarted with -resume. The gate proves the resumed sweep
# (a) emits CSV byte-identical to an uninterrupted engine run and
# (b) re-executes zero journaled rows: the resumed coordinator leases
# exactly the units the journal lacked.
#
# The scenario and resumed-row counts are derived from the runs' own
# banners and journal, never hard-coded, so the gate stays loud when
# the grid or batch sizing changes.
set -eu

tmp=$(mktemp -d)
coord_pid=""
worker_pid=""
cleanup() {
    [ -n "$worker_pid" ] && kill "$worker_pid" 2>/dev/null
    [ -n "$coord_pid" ] && kill -9 "$coord_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ntc-sweep" ./cmd/ntc-sweep

# 24 scenarios heavy enough (2000 VMs each) that the sweep takes
# seconds: the kill window between the first journaled batch and the
# end of the grid is wide.
run_grid() {
    "$tmp/ntc-sweep" \
        -policies EPACT,COAT,COAT-OPT,FFD,Verma-binary,load-balance \
        -vms 2000 -max-servers 2000 -days 1 -history 1 \
        -predictors oracle,last-value -transitions none,default \
        "$@"
}

# Scrape the address a -serve coordinator bound from its stderr log.
wait_addr() {
    log=$1; addr=""; tries=0
    while [ -z "$addr" ]; do
        addr=$(sed -n 's/^coordinator: listening on \(.*\)$/\1/p' "$log")
        tries=$((tries + 1))
        if [ "$tries" -gt 400 ]; then
            echo "resume gate FAILED: coordinator never reported its address:" >&2
            cat "$log" >&2
            exit 1
        fi
        [ -n "$addr" ] || sleep 0.05
    done
    echo "$addr"
}

# count_rows: completed rows currently in the journal (each carries a
# "row" key; lease entries do not).
count_rows() {
    grep -o '"row":' "$tmp/ck/journal.json" 2>/dev/null | wc -l
}

# The uninterrupted reference run.
run_grid -workers 4 -csv "$tmp/ref.csv" 2> "$tmp/ref.log"
n=$(sed -n 's/^running \([0-9][0-9]*\) scenarios\.\.\..*/\1/p' "$tmp/ref.log")
if [ -z "$n" ] || [ "$n" -le 0 ]; then
    echo "resume gate FAILED: could not derive the scenario count from the sweep banner:" >&2
    cat "$tmp/ref.log" >&2
    exit 1
fi

# Coordinator A journals to the checkpoint dir; one worker grinds the
# grid until A is kill -9'd mid-run.
run_grid -serve 127.0.0.1:0 -checkpoint-dir "$tmp/ck" -csv "$tmp/a.csv" 2> "$tmp/a.log" &
coord_pid=$!
addr=$(wait_addr "$tmp/a.log")
"$tmp/ntc-sweep" -worker "$addr" -quiet 2> "$tmp/worker_a.log" &
worker_pid=$!

tries=0
while [ "$(count_rows)" -lt 1 ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 600 ]; then
        echo "resume gate FAILED: no batch ever reached the journal:" >&2
        cat "$tmp/a.log" "$tmp/worker_a.log" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$coord_pid"
wait "$coord_pid" 2>/dev/null || true
coord_pid=""
kill "$worker_pid" 2>/dev/null || true
wait "$worker_pid" 2>/dev/null || true
worker_pid=""

# The journal is final now; the kill must have landed mid-grid.
r=$(count_rows)
if [ "$r" -lt 1 ] || [ "$r" -ge "$n" ]; then
    echo "resume gate FAILED: journal holds $r of $n rows — the kill missed the mid-run window" >&2
    exit 1
fi
if [ -f "$tmp/a.csv" ]; then
    echo "resume gate FAILED: the killed coordinator wrote its CSV anyway" >&2
    exit 1
fi

# Coordinator B resumes from the journal — no axis flags: the journal
# alone defines the grid. A fresh worker finishes it. B's exit status
# gates the script (set -e via plain wait).
"$tmp/ntc-sweep" -resume "$tmp/ck" -serve 127.0.0.1:0 -csv "$tmp/b.csv" 2> "$tmp/b.log" &
coord_pid=$!
addr=$(wait_addr "$tmp/b.log")
"$tmp/ntc-sweep" -worker "$addr" -quiet 2> "$tmp/worker_b.log" &
worker_pid=$!
wait "$coord_pid"
coord_pid=""
wait "$worker_pid" || true
worker_pid=""

# Byte-identity with the uninterrupted run.
cmp "$tmp/ref.csv" "$tmp/b.csv"

# Zero re-executed warm units: B restored exactly r rows and leased
# exactly the n-r the journal lacked.
grep -q "resuming: $r of $n rows restored" "$tmp/b.log"
grep -q "dist: $n units (0 cache hits), $((n - r)) leases" "$tmp/b.log"
grep -q ", $r resumed," "$tmp/b.log"

echo "resume gate ok: kill -9 after $r of $n rows, resumed run re-executed 0 journaled units, bytes identical"
