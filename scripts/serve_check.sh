#!/usr/bin/env sh
# End-to-end live-service gate (CI `serve` job): boot a real ntc-serve
# daemon on an ephemeral port, host two sessions plus a live-ingestion
# session, drive their replays over HTTP, and prove the exposition
# contract from outside the process:
#
#   (a) two scrapes at the same slots are byte-identical over the whole
#       multi-session page (deterministic rendering, no scrape
#       counters), every session shards the page under its own
#       session label, and the carbon gauges (ntc_carbon_*,
#       ntc_dc_carbon_* sharded per DC) are on the page, live, and —
#       being part of the compared bytes — scrape-stable;
#   (b) per-session slot counters are monotone and independent, and the
#       stable gauges (ntc_slots, ntc_info) never change;
#   (c) a live-ingestion session is gated: stepping before the slot's
#       observed samples land is a 409, and ingesting them unblocks
#       exactly one slot;
#   (d) a warm what-if — same delta, second request — answers with zero
#       executions from the shared result store, and a mid-replay fork
#       answers from carried state without executing anything either.
set -eu

tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ntc-serve" ./cmd/ntc-serve

# Small triad scenario (24 slots) with a writable what-if store.
"$tmp/ntc-serve" \
    -addr 127.0.0.1:0 \
    -vms 48 -max-servers 48 -days 1 -history 1 \
    -predictor oracle -transitions default \
    -topology triad -rebalance epoch:4 \
    -cache rw -cache-dir "$tmp/store" \
    2> "$tmp/serve.log" &
serve_pid=$!

# Scrape the bound address from the daemon's banner.
addr=""; tries=0
while [ -z "$addr" ]; do
    addr=$(sed -n 's/^ntc-serve: listening on \(.*\)$/\1/p' "$tmp/serve.log")
    tries=$((tries + 1))
    if [ "$tries" -gt 400 ]; then
        echo "serve gate FAILED: daemon never reported its address:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    [ -n "$addr" ] || sleep 0.05
done

# post PATH BODY -> stdout body; records the HTTP code in $code.
post() {
    code=$(curl -sS -o "$tmp/resp.json" -w '%{http_code}' -X POST -d "$2" "http://$addr$1")
    cat "$tmp/resp.json"
}
step() {
    post "/v1/sessions/$1/step" "{\"slots\": $2}" > "$tmp/step.json"
    [ "$code" = 200 ] || {
        echo "serve gate FAILED: step $1 -> $code: $(cat "$tmp/step.json")" >&2
        exit 1
    }
}
scrape() {
    curl -sS "http://$addr/metrics" > "$1"
}
slot_of() {
    sed -n 's/^ntc_slot{session="'"$2"'"} \([0-9][0-9]*\)$/\1/p' "$1"
}

# Two extra sessions against the flag-built base: a hotter-static-power
# replay, and a live-ingestion session fed observed telemetry.
post /v1/sessions '{"id": "hot", "static_power_w": [30]}' > /dev/null
[ "$code" = 201 ] || { echo "serve gate FAILED: create hot -> $code" >&2; exit 1; }
post /v1/sessions '{"id": "live", "ingest": true}' > /dev/null
[ "$code" = 201 ] || { echo "serve gate FAILED: create live -> $code" >&2; exit 1; }

# (a) Determinism across the sharded page: advance default to slot 8
# and hot to slot 5, scrape twice, compare bytes.
step default 8
step hot 5
scrape "$tmp/m1.txt"
scrape "$tmp/m2.txt"
cmp "$tmp/m1.txt" "$tmp/m2.txt"
[ "$(slot_of "$tmp/m1.txt" default)" = "8" ] || {
    echo "serve gate FAILED: default at slot $(slot_of "$tmp/m1.txt" default), want 8" >&2
    exit 1
}
[ "$(slot_of "$tmp/m1.txt" hot)" = "5" ] || {
    echo "serve gate FAILED: hot at slot $(slot_of "$tmp/m1.txt" hot), want 5" >&2
    exit 1
}
grep -q '^ntc_info{session="hot",' "$tmp/m1.txt"

# Carbon gauges ride on the same byte-compared page: the fleet totals
# exist per session, the per-DC shards carry every triad DC, and the
# operational total is live (the triad prices at the default grid
# intensity), not a dead zero.
grep -q '^ntc_carbon_operational_g{session="default"} ' "$tmp/m1.txt"
grep -q '^ntc_carbon_embodied_g{session="default"} ' "$tmp/m1.txt"
grep -q '^ntc_carbon_operational_g{session="hot"} ' "$tmp/m1.txt"
for dc in core metro edge; do
    grep -q '^ntc_dc_carbon_operational_g{session="default",dc="'"$dc"'"} ' "$tmp/m1.txt" || {
        echo "serve gate FAILED: no per-DC operational-carbon gauge for $dc" >&2
        exit 1
    }
done
grep '^ntc_carbon_operational_g{session="default"} ' "$tmp/m1.txt" | grep -qv ' 0$' || {
    echo "serve gate FAILED: operational carbon is zero at slot 8" >&2
    exit 1
}

# (b) Monotone, independent ticks; stable identity gauges.
step default 5
scrape "$tmp/m3.txt"
[ "$(slot_of "$tmp/m3.txt" default)" = "13" ] || {
    echo "serve gate FAILED: default slot not monotone: $(slot_of "$tmp/m3.txt" default) after 8+5 ticks" >&2
    exit 1
}
[ "$(slot_of "$tmp/m3.txt" hot)" = "5" ] || {
    echo "serve gate FAILED: stepping default moved hot to $(slot_of "$tmp/m3.txt" hot)" >&2
    exit 1
}
grep '^ntc_slots{' "$tmp/m1.txt" > "$tmp/stable1.txt"
grep '^ntc_info{' "$tmp/m1.txt" >> "$tmp/stable1.txt"
grep '^ntc_slots{' "$tmp/m3.txt" > "$tmp/stable3.txt"
grep '^ntc_info{' "$tmp/m3.txt" >> "$tmp/stable3.txt"
cmp "$tmp/stable1.txt" "$tmp/stable3.txt"
grep -q '^ntc_slots{session="default"} 24$' "$tmp/m3.txt"

# (c) Live ingestion is gated: a step before the slot's samples land
# is a 409, ingesting one slot of observed telemetry unblocks exactly
# one step.
post /v1/sessions/live/step '{}' > /dev/null
[ "$code" = 409 ] || {
    echo "serve gate FAILED: stepping unobserved live session -> $code, want 409" >&2
    exit 1
}
row='[0,0,0,0,0,0,0,0,0,0,0,0]'
rows=$row; i=1
while [ "$i" -lt 48 ]; do rows="$rows,$row"; i=$((i + 1)); done
post /v1/sessions/live/observe "{\"slot\": 0, \"cpu\": [$rows], \"mem\": [$rows]}" > /dev/null
[ "$code" = 200 ] || {
    echo "serve gate FAILED: observe slot 0 -> $code: $(cat "$tmp/resp.json")" >&2
    exit 1
}
step live 1
grep -q '"session":"live","slot":1,' "$tmp/step.json" || {
    echo "serve gate FAILED: live step response: $(cat "$tmp/step.json")" >&2
    exit 1
}
scrape "$tmp/m5.txt"
grep -q '^ntc_ingest{session="live"} 1$' "$tmp/m5.txt"
grep -q '^ntc_ingest_slots{session="live"} 1$' "$tmp/m5.txt"

# (d) Warm what-if: cold request executes, identical repeat answers
# entirely from the store; a mid-replay fork answers from carried
# state — no executions either way.
whatif() {
    post /v1/whatif '{"policies": ["EPACT", "COAT"]}'
}
whatif | grep -q '"scenarios":2,"executed":2,"cache_hits":0'
whatif | grep -q '"scenarios":2,"executed":0,"cache_hits":2'
post /v1/whatif '{"fork": true}' > "$tmp/fork.json"
[ "$code" = 200 ] || {
    echo "serve gate FAILED: fork -> $code: $(cat "$tmp/fork.json")" >&2
    exit 1
}
grep -q '"session":"default","slot":13,"slots":24,"fork":true' "$tmp/fork.json"
scrape "$tmp/m4.txt"
grep -q '^ntc_whatif_executed{session="default"} 2$' "$tmp/m4.txt"
grep -q '^ntc_whatif_cache_hits{session="default"} 2$' "$tmp/m4.txt"
grep -q '^ntc_whatif_forks{session="default"} 1$' "$tmp/m4.txt"
grep -q '^ntc_cache_writes{session="default"} 2$' "$tmp/m4.txt"

echo "serve gate ok: byte-identical 3-session scrapes with live per-DC carbon gauges, default 13/24 + hot 5/24, gated ingestion on live, warm what-if + fork executed 0"
