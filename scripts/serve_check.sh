#!/usr/bin/env sh
# End-to-end live-service gate (CI `serve` job): boot a real ntc-serve
# daemon on an ephemeral port, drive its manual-tick replay over HTTP,
# and prove the exposition contract from outside the process:
#
#   (a) two scrapes at the same slot are byte-identical (deterministic
#       rendering, no scrape counters);
#   (b) the slot counter is monotone across ticks and the stable
#       gauges (ntc_slots, ntc_info) never change;
#   (c) a warm what-if — same delta, second request — answers with
#       zero executions from the shared result store.
set -eu

tmp=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/ntc-serve" ./cmd/ntc-serve

# Small triad scenario (24 slots) with a writable what-if store.
"$tmp/ntc-serve" \
    -addr 127.0.0.1:0 \
    -vms 48 -max-servers 48 -days 1 -history 1 \
    -predictor oracle -transitions default \
    -topology triad -rebalance epoch:4 \
    -cache rw -cache-dir "$tmp/store" \
    2> "$tmp/serve.log" &
serve_pid=$!

# Scrape the bound address from the daemon's banner.
addr=""; tries=0
while [ -z "$addr" ]; do
    addr=$(sed -n 's/^ntc-serve: listening on \(.*\)$/\1/p' "$tmp/serve.log")
    tries=$((tries + 1))
    if [ "$tries" -gt 400 ]; then
        echo "serve gate FAILED: daemon never reported its address:" >&2
        cat "$tmp/serve.log" >&2
        exit 1
    fi
    [ -n "$addr" ] || sleep 0.05
done

step() {
    curl -sS -X POST -d "{\"slots\": $1}" "http://$addr/v1/step" > "$tmp/step.json"
}
scrape() {
    curl -sS "http://$addr/metrics" > "$1"
}
slot_of() {
    sed -n 's/^ntc_slot \([0-9][0-9]*\)$/\1/p' "$1"
}

# (a) Determinism: advance to slot 8, scrape twice, compare bytes.
step 8
scrape "$tmp/m1.txt"
scrape "$tmp/m2.txt"
cmp "$tmp/m1.txt" "$tmp/m2.txt"
[ "$(slot_of "$tmp/m1.txt")" = "8" ] || {
    echo "serve gate FAILED: expected slot 8, got $(slot_of "$tmp/m1.txt")" >&2
    exit 1
}

# (b) Monotone ticks, stable identity gauges.
step 5
scrape "$tmp/m3.txt"
[ "$(slot_of "$tmp/m3.txt")" = "13" ] || {
    echo "serve gate FAILED: slot counter not monotone: $(slot_of "$tmp/m3.txt") after 8+5 ticks" >&2
    exit 1
}
grep '^ntc_slots ' "$tmp/m1.txt" > "$tmp/stable1.txt"
grep '^ntc_info{' "$tmp/m1.txt" >> "$tmp/stable1.txt"
grep '^ntc_slots ' "$tmp/m3.txt" > "$tmp/stable3.txt"
grep '^ntc_info{' "$tmp/m3.txt" >> "$tmp/stable3.txt"
cmp "$tmp/stable1.txt" "$tmp/stable3.txt"
grep -q '^ntc_slots 24$' "$tmp/m3.txt"

# (c) Warm what-if: cold request executes, identical repeat answers
# entirely from the store.
whatif() {
    curl -sS -X POST -d '{"policies": ["EPACT", "COAT"]}' "http://$addr/v1/whatif"
}
whatif | grep -q '"scenarios":2,"executed":2,"cache_hits":0'
whatif | grep -q '"scenarios":2,"executed":0,"cache_hits":2'
scrape "$tmp/m4.txt"
grep -q '^ntc_whatif_executed 2$' "$tmp/m4.txt"
grep -q '^ntc_whatif_cache_hits 2$' "$tmp/m4.txt"
grep -q '^ntc_cache_writes 2$' "$tmp/m4.txt"

echo "serve gate ok: deterministic scrapes at slot 8, monotone ticks to 13/24, warm what-if executed 0 of 2"
