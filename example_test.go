package ntcdc_test

import (
	"context"
	"fmt"
	"strings"

	ntcdc "repro"
)

// The paper's headline server-level result: the NTC server's most
// energy-proportional frequency is ≈1.9 GHz, not F_max.
func ExampleServerPowerModel_optimalFrequency() {
	srv := ntcdc.NTCServerPower()
	fmt.Println(srv.OptimalFrequency())
	// Output: 1.9GHz
}

// The conventional comparison server is most efficient flat out,
// which is why consolidation used to be the right policy.
func ExampleConventionalServerPower() {
	srv := ntcdc.ConventionalServerPower()
	fmt.Println(srv.OptimalFrequency() == srv.FMax)
	// Output: true
}

// QoS floors per workload class on the NTC server (Fig. 2).
func ExampleMinQoSFrequency() {
	ntc := ntcdc.NTCPlatform()
	for _, c := range []ntcdc.WorkloadClass{ntcdc.LowMem, ntcdc.MidMem, ntcdc.HighMem} {
		f, err := ntcdc.MinQoSFrequency(ntc, c)
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Printf("%s: %v\n", c, f)
	}
	// Output:
	// low-mem: 1.2GHz
	// mid-mem: 1.8GHz
	// high-mem: 1.8GHz
}

// Table I's NTC column, computed from the calibrated platform model.
func ExamplePlatform_execTime() {
	ntc := ntcdc.NTCPlatform()
	for _, c := range []ntcdc.WorkloadClass{ntcdc.LowMem, ntcdc.MidMem, ntcdc.HighMem} {
		fmt.Printf("%s: %.3f s\n", c, ntc.ExecTime(c, ntcdc.GHz(2)))
	}
	// Output:
	// low-mem: 0.582 s
	// mid-mem: 2.926 s
	// high-mem: 6.765 s
}

// A fleet topology composes heterogeneous datacenters behind a
// cross-DC dispatch policy; the builtin "triad" mixes an NTC core
// site, a heavier-static metro site and a conventional edge site.
// Relative datacenters (Servers 0) are sized from the scenario's
// fleet-wide pool at run time — Resolve(600) splits 600 servers by
// share.
func ExampleParseTopology() {
	fleet, err := ntcdc.ParseTopology("greedy-proportional@triad")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s via %s dispatch:\n", fleet.Name, fleet.Dispatcher)
	for _, dc := range fleet.Resolve(600).DCs {
		fmt.Printf("  %s: %d servers, PUE %.2f, %.0f ms\n",
			dc.Name, dc.Servers, dc.PUE, dc.LatencyMs)
	}
	// Output:
	// triad via greedy-proportional dispatch:
	//   core: 300 servers, PUE 1.12, 40 ms
	//   metro: 180 servers, PUE 1.25, 15 ms
	//   edge: 120 servers, PUE 1.50, 5 ms
}

// A cross-DC rebalance spec turns static dispatch into an epoch
// control loop: every N slots the fleet re-dispatches over observed
// load and pays for every VM it moves.
func ExampleParseFleetRebalance() {
	reb, err := ntcdc.ParseFleetRebalance("epoch:4@greedy-proportional")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("every %d slots via %s (canonical %q)\n", reb.EverySlots, reb.Dispatcher, reb.String())
	// Output:
	// every 4 slots via greedy-proportional (canonical "epoch:4@greedy-proportional")
}

// Body bias is the FD-SOI-specific knob: reverse bias slashes leakage
// for parked servers.
func ExampleWithBodyBias() {
	tech := ntcdc.FDSOI28()
	rbb, err := ntcdc.WithBodyBias(tech, -1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	f := ntcdc.GHz(1.0)
	fmt.Println(rbb.LeakageScale(f) < 0.5*tech.LeakageScale(f))
	// Output: true
}

// A distributed sweep in one process: the coordinator/worker protocol
// over the in-process transport emits exactly what RunSweep does.
func ExampleRunDistributedSweep() {
	grid := ntcdc.SweepGrid{
		Policies:    []string{"EPACT", "COAT"},
		VMs:         []int{20},
		MaxServers:  []int{20},
		HistoryDays: 1,
		EvalDays:    1,
		Predictors:  []string{"oracle"},
	}
	res, stats, err := ntcdc.RunDistributedSweep(context.Background(), grid, 2, ntcdc.DistOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	single, err := ntcdc.RunSweep(grid, ntcdc.SweepOptions{Workers: 1})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("units:", stats.Units)
	fmt.Println("byte-identical to the engine:", res.CSV() == single.CSV())
	// Output:
	// units: 2
	// byte-identical to the engine: true
}

// The live fleet service: replay the default session slot by slot
// and read its gauges — sharded under the session label — from the
// OpenMetrics exposition at any point.
func ExampleNewFleetService() {
	svc, err := ntcdc.NewFleetService(ntcdc.FleetServiceOptions{
		Grid: ntcdc.SweepGrid{
			Policies:    []string{"EPACT"},
			VMs:         []int{24},
			MaxServers:  []int{24},
			HistoryDays: 1,
			EvalDays:    1,
			Predictors:  []string{"oracle"},
		},
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	slot, done, err := svc.Step(3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("slot:", slot, "done:", done)

	var page strings.Builder
	if err := svc.WriteMetrics(&page); err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, line := range strings.Split(page.String(), "\n") {
		if strings.HasPrefix(line, "ntc_slot{") || strings.HasPrefix(line, "ntc_slots{") {
			fmt.Println(line)
		}
	}
	// Output:
	// slot: 3 done: false
	// ntc_slot{session="default"} 3
	// ntc_slots{session="default"} 24
}
