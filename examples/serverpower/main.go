// Serverpower reproduces the paper's server-level studies for the
// three banking workload classes: Table I execution times, the Fig. 2
// QoS crossovers, and the Fig. 3 efficiency curves.
package main

import (
	"fmt"
	"log"
	"os"

	ntcdc "repro"
	"repro/internal/experiments"
)

func main() {
	// Table I: the three platforms on the three classes.
	fmt.Println("=== Table I: QoS analysis ===")
	if err := experiments.TableI().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Fig. 2: how far each class can be slowed before violating the
	// 2x degradation limit.
	fmt.Println("\n=== QoS crossovers (Fig. 2) ===")
	ntc := ntcdc.NTCPlatform()
	for _, c := range []ntcdc.WorkloadClass{ntcdc.LowMem, ntcdc.MidMem, ntcdc.HighMem} {
		f, err := ntcdc.MinQoSFrequency(ntc, c)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s meets the 2x limit down to %v (limit %.3f s)\n",
			c, f, ntcdc.QoSLimit(c))
	}

	// Fig. 3: the frequency that maximises useful work per watt.
	fmt.Println("\n=== Efficiency curves (Fig. 3) ===")
	f3, err := experiments.Fig3()
	if err != nil {
		log.Fatal(err)
	}
	if err := f3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nTake-away: efficiency peaks at 1.2-1.5 GHz but QoS forces")
	fmt.Println("mid/high-mem up to 1.8 GHz — the trade-off of Section VI-B3.")
}
