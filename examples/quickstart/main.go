// Quickstart: build the NTC server model, sweep its DVFS range, and
// find the energy-proportionality optimum the paper's whole argument
// rests on (≈1.9 GHz, not F_max).
package main

import (
	"fmt"

	ntcdc "repro"
)

func main() {
	srv := ntcdc.NTCServerPower()
	fmt.Printf("server: %s\n", srv.Name)
	fmt.Printf("technology: %s\n\n", srv.Tech)

	fmt.Println("f (GHz)   P cpu-bound (W)   P/f (W/GHz)")
	for _, f := range srv.DVFSLevels() {
		if int(f.MHz())%500 != 0 && f != srv.FMax {
			continue // print a coarse grid
		}
		fmt.Printf("%5.1f     %8.1f          %6.1f\n",
			f.GHz(), srv.CPUBoundPower(f).W(), srv.PowerPerGHz(f))
	}

	fOpt := srv.OptimalFrequency()
	fmt.Printf("\nmost energy-proportional frequency: %v\n", fOpt)
	fmt.Printf("power there: %v (vs %v at FMax)\n",
		srv.CPUBoundPower(fOpt), srv.CPUBoundPower(srv.FMax))

	// The same sweep on a conventional server shows why consolidation
	// at FMax used to be the right call.
	e5 := ntcdc.ConventionalServerPower()
	fmt.Printf("\nconventional %s optimum: %v (= FMax)\n", e5.Name, e5.OptimalFrequency())
}
