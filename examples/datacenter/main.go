// Datacenter runs the paper's headline experiment end to end at a
// reduced scale: a synthetic Google-style trace, ARIMA day-ahead
// forecasts, and the EPACT / COAT / COAT-OPT comparison of Figs. 4-6.
//
// Pass -full for the paper-scale run (600 VMs, one week; takes a few
// seconds). Pass -trace to replay a file-backed trace instead of the
// generator, e.g.
//
//	go run ./cmd/tracegen -vms 150 -days 9 -o week.csv
//	go run ./examples/datacenter -trace csv:week.csv
//
// (the file must hold at least the example's VM count and 7 history
// days + the evaluated days; see docs/TRACES.md for the formats).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	ntcdc "repro"
)

func main() {
	full := flag.Bool("full", false, "paper-scale run (600 VMs, 7 days)")
	traceSpec := flag.String("trace", "", `trace backend spec, e.g. "csv:week.csv" (default: synthetic generator)`)
	flag.Parse()

	cfg := ntcdc.DefaultWeekConfig()
	if !*full {
		cfg.VMs = 150
		cfg.EvalDays = 2
	}
	cfg.TraceSpec = *traceSpec

	source := "synthetic trace"
	if *traceSpec != "" {
		source = *traceSpec
	}
	fmt.Printf("simulating %d VMs over %d days (%s, ARIMA predictions)...\n\n", cfg.VMs, cfg.EvalDays, source)
	week, err := ntcdc.RunWeek(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := week.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// A compact per-slot view of the first day: the Fig. 4-6 series.
	fmt.Println("\nfirst-day slot series (violations / active / MJ):")
	for _, p := range week.Policies {
		n := 24
		if n > len(week.EnergyMJ[p]) {
			n = len(week.EnergyMJ[p])
		}
		fmt.Printf("%-9s", p)
		for i := 0; i < n; i += 4 {
			fmt.Printf("  [%2d] %3d/%2d/%.1f", i,
				week.Violations[p][i], week.Active[p][i], week.EnergyMJ[p][i])
		}
		fmt.Println()
	}
}
