// Bodybias explores the UTBB FD-SOI knob the paper's technology
// references (PULPv2, Jacquet et al.) exploit: forward body bias
// (FBB) trades leakage for speed at low voltage, reverse body bias
// (RBB) the other way. The example sweeps the bias at the NTC
// operating point and shows why FD-SOI widens the near-threshold
// region bulk CMOS cannot reach.
package main

import (
	"fmt"
	"log"

	ntcdc "repro"
	"repro/internal/fdsoi"
)

func main() {
	tech := ntcdc.FDSOI28()
	f := ntcdc.GHz(1.0) // the classic FD-SOI silicon point: 1 GHz at 0.6 V

	fmt.Printf("technology: %s\n", tech)
	fmt.Printf("operating point: %v at %v (near-threshold boundary)\n\n",
		f, tech.VoltageAt(f))

	fmt.Println("bias (V)   Vdd needed   leakage x   dyn-energy x   notes")
	for _, bias := range []fdsoi.BodyBias{-1.0, -0.5, 0, 0.5, 1.0} {
		bt, err := tech.WithBodyBias(bias)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		switch {
		case bias < 0:
			note = "RBB: retention / dark-silicon mode"
		case bias > 0:
			note = "FBB: speed boost or lower Vdd"
		default:
			note = "nominal"
		}
		fmt.Printf("%+5.1f      %.3f V      %6.2f      %6.2f         %s\n",
			float64(bias),
			bt.VoltageAt(f).V(),
			bt.LeakageScale(f)/tech.LeakageScale(f),
			bt.DynamicEnergyScale(f)/tech.DynamicEnergyScale(f),
			note)
	}

	fbb, err := tech.WithBodyBias(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFBB 1.0 V frequency uplift at %v: %.0f%%\n",
		f, (fbb.MaxFrequencyGain(f)-1)*100)

	// Bulk for contrast: a tenth of the window, a third of the effect.
	bulk := fdsoi.Bulk32()
	if _, err := bulk.WithBodyBias(0.5); err != nil {
		fmt.Printf("\nbulk 32nm at +0.5 V bias: %v\n", err)
	}
	bt, err := bulk.WithBodyBias(0.3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulk at its +0.3 V limit shifts Vth by only %.0f mV (FD-SOI: %.0f mV at +1 V)\n",
		bt.VthShift().V()*-1000, 85.0)

}
