// Forecasting demonstrates the prediction layer EPACT depends on: fit
// ARIMA on six days of one VM's CPU trace, forecast day seven, and
// compare the error against the naive baselines.
package main

import (
	"fmt"
	"log"

	ntcdc "repro"
	"repro/internal/forecast"
	"repro/internal/mathx"
	"repro/internal/trace"
)

func main() {
	tr, err := ntcdc.GenerateTrace(ntcdc.DefaultTraceConfig(42))
	if err != nil {
		log.Fatal(err)
	}
	vm := tr.VMs[7]
	day := trace.SamplesPerDay
	history, actual := vm.CPU[:6*day], vm.CPU[6*day:7*day]

	predictors := []ntcdc.Predictor{
		ntcdc.NewARIMA(),
		&forecast.SeasonalNaive{Period: day},
		forecast.LastValue{},
	}

	fmt.Printf("VM %d (%v): forecasting day 7 from days 1-6\n\n", vm.ID, vm.Class)
	fmt.Println("predictor            RMSE    MAPE(%)")
	for _, p := range predictors {
		pred, err := p.Forecast(history, day)
		if err != nil {
			log.Fatal(err)
		}
		rmse, err := mathx.RMSE(actual, pred)
		if err != nil {
			log.Fatal(err)
		}
		mape, err := mathx.MAPE(actual, pred, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %5.2f   %6.2f\n", p.Name(), rmse, mape)
	}

	fmt.Printf("\nactual day-7 mean: %.1f%%, std: %.1f%%\n",
		mathx.Mean(actual), mathx.Std(actual))
	fmt.Println("\nARIMA's edge over last-value on diurnal traces is what lets")
	fmt.Println("EPACT size the server pool a slot ahead without violations.")
}
