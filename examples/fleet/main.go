// Fleet runs the multi-datacenter consolidation study: the same week
// of VMs dispatched across a heterogeneous fleet under every cross-DC
// dispatch policy, with EPACT and COAT packing each datacenter. It
// answers the paper's question one level up — consolidate the *fleet*
// onto its most energy-proportional site, or spread?
//
// By default it uses the builtin "triad" fleet (an NTC core site, a
// heavier-static metro site, a conventional low-latency edge site) at
// a reduced scale. Pass -full for the paper-scale week, -fleet to
// swap in your own fleet file, and -rebalance to compare static
// dispatch against the epoch rebalancer, e.g.
//
//	go run ./examples/fleet -fleet myfleet.json
//	go run ./examples/fleet -rebalance epoch:4@greedy-proportional
//
// (see docs/TOPOLOGY.md for the fleet-file and rebalance formats).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	ntcdc "repro"
)

func main() {
	full := flag.Bool("full", false, "paper-scale run (600 VMs, 7 days)")
	fleet := flag.String("fleet", "triad", `fleet ref: a builtin name or a fleet.json path`)
	rebalance := flag.String("rebalance", "", `also run each dispatcher with this rebalance spec, e.g. epoch:4@greedy-proportional`)
	flag.Parse()

	cfg := ntcdc.DefaultFleetWeekConfig()
	cfg.Fleet = *fleet
	if *rebalance != "" {
		if _, err := ntcdc.ParseFleetRebalance(*rebalance); err != nil {
			log.Fatal(err)
		}
		cfg.Rebalances = []string{"off", *rebalance}
	}
	if !*full {
		cfg.DC.VMs = 150
		cfg.DC.EvalDays = 2
	}

	fmt.Printf("dispatching %d VMs across fleet %q over %d days (%s)...\n\n",
		cfg.DC.VMs, cfg.Fleet, cfg.DC.EvalDays, predictorName(cfg.DC.UseARIMA))
	rows, err := ntcdc.RunFleetWeek(cfg)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dispatcher\trebalance\tpolicy\tenergy (MJ)\tEP score\tviolations\twan viol\tmoves\tmean active\tper-DC energy (MJ)")
	for _, r := range rows {
		perDC := ""
		for i, dc := range r.PerDC {
			if i > 0 {
				perDC += "  "
			}
			perDC += fmt.Sprintf("%s=%.1f", dc.Name, dc.EnergyMJ)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%.3f\t%d\t%.1f\t%d\t%.1f\t%s\n",
			r.Dispatcher, r.Rebalance, r.Policy, r.EnergyMJ, r.EPScore, r.Violations,
			r.LatencyWeightedViol, r.CrossDCMigrations, r.MeanActive, perDC)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// The headline comparison: best fleet consolidation vs best spread.
	best := rows[0]
	for _, r := range rows[1:] {
		if r.EnergyMJ < best.EnergyMJ {
			best = r
		}
	}
	fmt.Printf("\ncheapest combination: %s dispatch (rebalance %s) + %s packing (%.1f MJ)\n",
		best.Dispatcher, best.Rebalance, best.Policy, best.EnergyMJ)
}

func predictorName(arima bool) string {
	if arima {
		return "ARIMA predictions"
	}
	return "oracle predictions"
}
